package experiment

import (
	"fmt"
	"strings"

	"gocbs/internal/bench"
	"gocbs/internal/inline"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/runner"
	"gocbs/internal/stats"
	"gocbs/internal/vm"
)

// ---------------------------------------------------------------------
// E8: convergence — accuracy as a function of executed cycles. §2 and
// §4 claim CBS "rapidly converges on a high-accuracy profile"; this
// study plots accuracy checkpoints for timer-only vs CBS.

// ConvergencePoint is one accuracy checkpoint.
type ConvergencePoint struct {
	MCycles float64
	Timer   float64
	CBS     float64
}

// convergenceProbe snapshots a CBS profiler's accuracy every tick.
type convergenceProbe struct {
	inner   *profiler.CBS
	perfect *profile.DCG
	points  []ConvergencePoint // only MCycles + one series filled
}

func (p *convergenceProbe) OnTimerTick(m *vm.VM) {
	p.inner.OnTimerTick(m)
	p.points = append(p.points, ConvergencePoint{
		MCycles: float64(m.Cycles) / 1e6,
		Timer:   profile.Accuracy(p.inner.Graph, p.perfect),
	})
}

func (p *convergenceProbe) OnYieldpoint(m *vm.VM, k vm.YieldKind) { p.inner.OnYieldpoint(m, k) }

// Name implements vm.Profiler.
func (p *convergenceProbe) Name() string { return "convergence-probe" }

var _ vm.Profiler = (*convergenceProbe)(nil)

// Convergence measures accuracy-over-time for one benchmark. The two
// probe series run as parallel jobs after the shared perfect profile.
func Convergence(cfg Config, b *bench.Benchmark, input string) ([]ConvergencePoint, error) {
	pool := cfg.startPool()
	size := b.SizeFor(input)
	perfect, err := PerfectDCG(cfg, b, size)
	if err != nil {
		return nil, err
	}
	runSeries := func(pc profiler.Config) ([]ConvergencePoint, error) {
		prog, err := cfg.prepare(b)
		if err != nil {
			return nil, err
		}
		probe := &convergenceProbe{inner: profiler.NewCBS(pc), perfect: perfect}
		m := vm.New(prog)
		m.MaxSteps = cfg.MaxSteps
		m.SetProfiler(probe)
		m.SetTimer(cfg.TimerPeriod)
		if _, err := m.Run(size); err != nil {
			return nil, err
		}
		cfg.addCycles(m.Cycles)
		return probe.points, nil
	}
	seed := int64(42)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}
	series, err := runner.Map(pool, []profiler.Config{
		{Stride: 1, SamplesPerTick: 1, Flavour: profiler.FlavourRVM, Seed: seed},
		{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM, Seed: seed},
	}, func(_ int, pc profiler.Config) ([]ConvergencePoint, error) {
		return runSeries(pc)
	})
	if err != nil {
		return nil, err
	}
	timer, cbs := series[0], series[1]
	n := len(timer)
	if len(cbs) < n {
		n = len(cbs)
	}
	out := make([]ConvergencePoint, n)
	for i := 0; i < n; i++ {
		out[i] = ConvergencePoint{MCycles: timer[i].MCycles, Timer: timer[i].Timer, CBS: cbs[i].Timer}
	}
	return out, nil
}

// FormatConvergence renders the two series.
func FormatConvergence(name string, pts []ConvergencePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Convergence study (%s): accuracy vs executed megacycles\n", name)
	fmt.Fprintf(&sb, "%10s %12s %12s\n", "Mcycles", "timer-only", "cbs(3,16)")
	step := len(pts)/20 + 1
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		fmt.Fprintf(&sb, "%10.1f %12.1f %12.1f\n", p.MCycles, p.Timer, p.CBS)
	}
	if len(pts) > 0 {
		p := pts[len(pts)-1]
		fmt.Fprintf(&sb, "%10.1f %12.1f %12.1f  (final)\n", p.MCycles, p.Timer, p.CBS)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E9: initial-skip ablation — §4's randomized skip versus round-robin
// versus always-sampling-immediately (the skew CBS is designed to
// avoid).

// SkewRow is one skip policy's suite-mean accuracy.
type SkewRow struct {
	Policy   string
	Accuracy float64
}

// SkewAblation compares skip policies at a wide stride where the
// choice of initial skip matters most. Perfect profiles are computed
// once per benchmark (they are policy-independent), then one job runs
// per (policy × benchmark).
func SkewAblation(cfg Config, input string, stride, samples int) ([]SkewRow, error) {
	pool := cfg.startPool()
	policies := []profiler.SkipPolicy{profiler.SkipRandom, profiler.SkipRoundRobin, profiler.SkipImmediate}

	perfects, err := runner.Map(pool, cfg.Benchmarks, func(_ int, b *bench.Benchmark) (*profile.DCG, error) {
		return PerfectDCG(cfg, b, b.SizeFor(input))
	})
	if err != nil {
		return nil, err
	}

	type job struct {
		pi, bi int
	}
	var jobs []job
	for pi := range policies {
		for bi := range cfg.Benchmarks {
			jobs = append(jobs, job{pi: pi, bi: bi})
		}
	}
	accs, err := runner.Map(pool, jobs, func(_ int, j job) (float64, error) {
		b := cfg.Benchmarks[j.bi]
		res, err := MeasureCBS(cfg, b, b.SizeFor(input), profiler.Config{
			Stride: stride, SamplesPerTick: samples,
			Flavour: profiler.FlavourRVM, SkipPolicy: policies[j.pi],
		}, perfects[j.bi])
		if err != nil {
			return 0, err
		}
		return res.Accuracy, nil
	})
	if err != nil {
		return nil, err
	}

	var rows []SkewRow
	for pi, sp := range policies {
		n := len(cfg.Benchmarks)
		rows = append(rows, SkewRow{
			Policy:   sp.String(),
			Accuracy: stats.Mean(accs[pi*n : (pi+1)*n]),
		})
	}
	return rows, nil
}

// FormatSkew renders the ablation.
func FormatSkew(rows []SkewRow, stride, samples int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Initial-skip ablation (stride=%d, samples=%d): suite-mean accuracy\n", stride, samples)
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6.1f\n", r.Policy, r.Accuracy)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E10: §3 comparators — exhaustive instrumentation (Vortex-style PIC
// counters), Whaley's timer-based stack sampler, Suganuma-style code
// patching, against timer-only and CBS.

// ComparatorRow is one technique's suite-mean overhead and accuracy.
type ComparatorRow struct {
	Technique   string
	OverheadPct float64
	Accuracy    float64
}

// Comparators measures every §3 technique on the suite: perfect
// profiles first (one job per benchmark), then one job per
// (benchmark × technique).
func Comparators(cfg Config, input string) ([]ComparatorRow, error) {
	pool := cfg.startPool()
	order := []string{"exhaustive-instrumented", "whaley", "code-patching", "timer-only", "cbs(3,16)"}

	perfects, err := runner.Map(pool, cfg.Benchmarks, func(_ int, b *bench.Benchmark) (*profile.DCG, error) {
		return PerfectDCG(cfg, b, b.SizeFor(input))
	})
	if err != nil {
		return nil, err
	}

	type job struct {
		bi, ti int
	}
	type pair struct {
		ovh, acc float64
	}
	var jobs []job
	for bi := range cfg.Benchmarks {
		for ti := range order {
			jobs = append(jobs, job{bi: bi, ti: ti})
		}
	}
	meas, err := runner.Map(pool, jobs, func(_ int, j job) (pair, error) {
		b := cfg.Benchmarks[j.bi]
		size := b.SizeFor(input)
		perfect := perfects[j.bi]
		runWith := func(p vm.Profiler) (*vm.VM, error) {
			prog, err := cfg.prepare(b)
			if err != nil {
				return nil, err
			}
			m := vm.New(prog)
			m.MaxSteps = cfg.MaxSteps
			m.SetProfiler(p)
			m.SetTimer(cfg.TimerPeriod)
			if _, err := m.Run(size); err != nil {
				return nil, err
			}
			cfg.addCycles(m.Cycles)
			return m, nil
		}
		switch order[j.ti] {
		case "exhaustive-instrumented":
			inst := profiler.NewInstrumented()
			m, err := runWith(inst)
			if err != nil {
				return pair{}, err
			}
			return pair{m.Overhead() * 100, profile.Accuracy(inst.Graph, perfect)}, nil
		case "whaley":
			wh := profiler.NewWhaley()
			m, err := runWith(wh)
			if err != nil {
				return pair{}, err
			}
			return pair{m.Overhead() * 100, profile.Accuracy(wh.Graph, perfect)}, nil
		case "code-patching":
			prog, err := cfg.prepare(b)
			if err != nil {
				return pair{}, err
			}
			pt := profiler.NewPatching(len(prog.Methods), 100, 64)
			mp := vm.New(prog)
			mp.MaxSteps = cfg.MaxSteps
			mp.SetProfiler(pt)
			if _, err := mp.Run(size); err != nil {
				return pair{}, err
			}
			cfg.addCycles(mp.Cycles)
			return pair{mp.Overhead() * 100, profile.Accuracy(pt.Graph, perfect)}, nil
		case "timer-only":
			res, err := MeasureCBS(cfg, b, size, profiler.TimerOnly(profiler.FlavourRVM), perfect)
			if err != nil {
				return pair{}, err
			}
			return pair{res.OverheadPct, res.Accuracy}, nil
		default: // cbs(3,16)
			res, err := MeasureCBS(cfg, b, size, profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM}, perfect)
			if err != nil {
				return pair{}, err
			}
			return pair{res.OverheadPct, res.Accuracy}, nil
		}
	})
	if err != nil {
		return nil, err
	}

	// Fold benchmark-major, matching the serial harness's append order.
	ovh := make([][]float64, len(order))
	acc := make([][]float64, len(order))
	for bi := range cfg.Benchmarks {
		for ti := range order {
			p := meas[bi*len(order)+ti]
			ovh[ti] = append(ovh[ti], p.ovh)
			acc[ti] = append(acc[ti], p.acc)
		}
	}
	var rows []ComparatorRow
	for ti, name := range order {
		rows = append(rows, ComparatorRow{
			Technique:   name,
			OverheadPct: stats.Mean(ovh[ti]),
			Accuracy:    stats.Mean(acc[ti]),
		})
	}
	return rows, nil
}

// FormatComparators renders the §3 comparison.
func FormatComparators(rows []ComparatorRow) string {
	var sb strings.Builder
	sb.WriteString("Profiling-technique comparison (suite means)\n")
	fmt.Fprintf(&sb, "%-26s %12s %10s\n", "Technique", "overhead%", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-26s %12.2f %10.1f\n", r.Technique, r.OverheadPct, r.Accuracy)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E11: old-vs-new inliner — §5.1 reports the new linear-threshold
// inliner beat the old conservative one by ~3% on average even with
// timer-only profiles.

// InlinerRow is one benchmark's steady-state comparison.
type InlinerRow struct {
	Name            string
	TimerSpeedupPct float64 // new vs old inliner under timer profiles
	CBSSpeedupPct   float64 // new vs old inliner under CBS profiles
}

// InlinerAblation compares OldJikes and NewLinear under identical
// profiles.
func InlinerAblation(cfg Config, input string) ([]InlinerRow, error) {
	timerCfg := profiler.TimerOnly(profiler.FlavourRVM)
	cbsCfg := profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM}
	if len(cfg.Seeds) > 0 {
		timerCfg.Seed = cfg.Seeds[0]
		cbsCfg.Seed = cfg.Seeds[0]
	}
	// One job per (benchmark × {old,new} × {timer,cbs}) build.
	pool := cfg.startPool()
	type job struct {
		bi, vi int
	}
	const nVariants = 4
	var jobs []job
	for bi := range cfg.Benchmarks {
		for vi := 0; vi < nVariants; vi++ {
			jobs = append(jobs, job{bi: bi, vi: vi})
		}
	}
	builds, err := runner.Map(pool, jobs, func(_ int, j job) (uint64, error) {
		b := cfg.Benchmarks[j.bi]
		size := b.SizeFor(input)
		w, msr := b.SteadyIters, b.SteadyIters
		var policy inline.Policy
		if j.vi == 0 || j.vi == 2 {
			policy = inline.NewOldJikes()
		} else {
			policy = inline.NewNewLinear()
		}
		pc := &timerCfg
		if j.vi >= 2 {
			pc = &cbsCfg
		}
		per, _, err := buildOptimized(cfg, b, size, policy, pc, w, msr)
		return per, err
	})
	if err != nil {
		return nil, err
	}

	var rows []InlinerRow
	for bi, b := range cfg.Benchmarks {
		oldTimer := builds[bi*nVariants]
		newTimer := builds[bi*nVariants+1]
		oldCBS := builds[bi*nVariants+2]
		newCBS := builds[bi*nVariants+3]
		rows = append(rows, InlinerRow{
			Name:            b.Name,
			TimerSpeedupPct: speedup(oldTimer, newTimer),
			CBSSpeedupPct:   speedup(oldCBS, newCBS),
		})
	}
	return rows, nil
}

// FormatInliners renders the ablation.
func FormatInliners(rows []InlinerRow) string {
	var sb strings.Builder
	sb.WriteString("Inliner ablation: % speedup of new linear-threshold inliner over old conservative inliner\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s\n", "Benchmark", "timer profiles", "cbs profiles")
	var t, c float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %13.2f%% %13.2f%%\n", r.Name, r.TimerSpeedupPct, r.CBSSpeedupPct)
		t += r.TimerSpeedupPct
		c += r.CBSSpeedupPct
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		fmt.Fprintf(&sb, "%-12s %13.2f%% %13.2f%%\n", "average", t/n, c/n)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E12: context sensitivity — CBS sampling full stacks into a
// calling-context tree, scored with the generalized overlap metric.

// ContextRow is one benchmark's context-sensitive measurement.
type ContextRow struct {
	Name            string
	FlatAccuracy    float64 // flat DCG accuracy of the same run
	CCTAccuracy     float64 // context-tree overlap vs exhaustive CCT
	CCTNodes        int
	PerfectCCTNodes int
	OverheadPct     float64
}

// ContextStudy measures CBS in FullStack mode. Each benchmark needs
// three independent runs — flat perfect DCG, exhaustive CCT, sampled
// CCS run — which fan out as separate jobs; the cheap overlap scoring
// happens in the input-ordered fold.
func ContextStudy(cfg Config, input string) ([]ContextRow, error) {
	pool := cfg.startPool()
	seed := int64(42)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}

	type runResult struct {
		flat *profile.DCG            // kind 0
		ex   *profiler.ExhaustiveCCT // kind 1
		cbs  *profiler.CBS           // kind 2
		ovh  float64
	}
	type job struct {
		bi, kind int
	}
	const nKinds = 3
	var jobs []job
	for bi := range cfg.Benchmarks {
		for k := 0; k < nKinds; k++ {
			jobs = append(jobs, job{bi: bi, kind: k})
		}
	}
	runs, err := runner.Map(pool, jobs, func(_ int, j job) (runResult, error) {
		b := cfg.Benchmarks[j.bi]
		size := b.SizeFor(input)
		switch j.kind {
		case 0:
			g, err := PerfectDCG(cfg, b, size)
			return runResult{flat: g}, err
		case 1:
			prog, err := cfg.prepare(b)
			if err != nil {
				return runResult{}, err
			}
			ex := profiler.NewExhaustiveCCT()
			m := vm.New(prog)
			m.MaxSteps = cfg.MaxSteps
			m.SetProfiler(ex)
			if _, err := m.Run(size); err != nil {
				return runResult{}, err
			}
			cfg.addCycles(m.Cycles)
			return runResult{ex: ex}, nil
		default:
			prog, err := cfg.prepare(b)
			if err != nil {
				return runResult{}, err
			}
			c := profiler.NewCBS(profiler.Config{
				Stride: 3, SamplesPerTick: 16,
				Flavour: profiler.FlavourRVM, Seed: seed, FullStack: true,
			})
			m := vm.New(prog)
			m.MaxSteps = cfg.MaxSteps
			m.SetProfiler(c)
			m.SetTimer(cfg.TimerPeriod)
			if _, err := m.Run(size); err != nil {
				return runResult{}, err
			}
			cfg.addCycles(m.Cycles)
			return runResult{cbs: c, ovh: m.Overhead() * 100}, nil
		}
	})
	if err != nil {
		return nil, err
	}

	var rows []ContextRow
	for bi, b := range cfg.Benchmarks {
		perfectFlat := runs[bi*nKinds].flat
		ex := runs[bi*nKinds+1].ex
		cbsRun := runs[bi*nKinds+2]
		rows = append(rows, ContextRow{
			Name:            b.Name,
			FlatAccuracy:    profile.Accuracy(cbsRun.cbs.Graph, perfectFlat),
			CCTAccuracy:     profile.OverlapCCT(cbsRun.cbs.Tree, ex.Tree),
			CCTNodes:        cbsRun.cbs.Tree.NumNodes(),
			PerfectCCTNodes: ex.Tree.NumNodes(),
			OverheadPct:     cbsRun.ovh,
		})
	}
	return rows, nil
}

// FormatContext renders the context-sensitivity study.
func FormatContext(rows []ContextRow) string {
	var sb strings.Builder
	sb.WriteString("Context-sensitive extension: CBS sampling full stacks into a CCT\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s %12s %10s\n",
		"Benchmark", "flat acc", "cct acc", "cct nodes", "true nodes", "overhead%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %10.1f %10.1f %10d %12d %10.2f\n",
			r.Name, r.FlatAccuracy, r.CCTAccuracy, r.CCTNodes, r.PerfectCCTNodes, r.OverheadPct)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E15: the §4 implementation-options discussion. In a VM whose method
// prologues already test a runtime flag, CBS overloads that flag and
// costs nothing while idle. A VM with no such test would pay "three
// executed instructions per method entry" always. This study measures
// that hypothetical: the always-on entry check's overhead across the
// suite, against the overloaded-flag implementation's.

// EntryCheckRow is one benchmark's comparison.
type EntryCheckRow struct {
	Name             string
	OverloadedPct    float64 // CBS via overloaded flag (the paper's design)
	ExplicitCheckPct float64 // plus 3 cycles on every method entry
}

// EntryCheckStudy measures both implementation options.
func EntryCheckStudy(cfg Config, input string) ([]EntryCheckRow, error) {
	seed := int64(42)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}
	// One job per (benchmark × entry-check cost).
	pool := cfg.startPool()
	type job struct {
		bi   int
		cost uint64
	}
	var jobs []job
	for bi := range cfg.Benchmarks {
		jobs = append(jobs, job{bi: bi, cost: 0}, job{bi: bi, cost: 3})
	}
	ovhs, err := runner.Map(pool, jobs, func(_ int, j job) (float64, error) {
		b := cfg.Benchmarks[j.bi]
		size := b.SizeFor(input)
		prog, err := cfg.prepare(b)
		if err != nil {
			return 0, err
		}
		c := profiler.NewCBS(profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM, Seed: seed})
		m := vm.New(prog)
		m.MaxSteps = cfg.MaxSteps
		m.EntryCheckCost = j.cost
		m.SetProfiler(c)
		m.SetTimer(cfg.TimerPeriod)
		if _, err := m.Run(size); err != nil {
			return 0, err
		}
		cfg.addCycles(m.Cycles)
		return m.Overhead() * 100, nil
	})
	if err != nil {
		return nil, err
	}

	var rows []EntryCheckRow
	for bi, b := range cfg.Benchmarks {
		rows = append(rows, EntryCheckRow{
			Name:             b.Name,
			OverloadedPct:    ovhs[bi*2],
			ExplicitCheckPct: ovhs[bi*2+1],
		})
	}
	return rows, nil
}

// FormatEntryCheck renders the study.
func FormatEntryCheck(rows []EntryCheckRow) string {
	var sb strings.Builder
	sb.WriteString("Implementation options (§4): overloaded flag vs 3-instruction entry check\n")
	fmt.Fprintf(&sb, "%-12s %16s %18s\n", "Benchmark", "overloaded ovh%", "explicit-check ovh%")
	var a, bsum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %16.3f %18.3f\n", r.Name, r.OverloadedPct, r.ExplicitCheckPct)
		a += r.OverloadedPct
		bsum += r.ExplicitCheckPct
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		fmt.Fprintf(&sb, "%-12s %16.3f %18.3f\n", "average", a/n, bsum/n)
	}
	return sb.String()
}
