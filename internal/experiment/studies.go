package experiment

import (
	"fmt"
	"strings"

	"gocbs/internal/bench"
	"gocbs/internal/inline"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/stats"
	"gocbs/internal/vm"
)

// ---------------------------------------------------------------------
// E8: convergence — accuracy as a function of executed cycles. §2 and
// §4 claim CBS "rapidly converges on a high-accuracy profile"; this
// study plots accuracy checkpoints for timer-only vs CBS.

// ConvergencePoint is one accuracy checkpoint.
type ConvergencePoint struct {
	MCycles float64
	Timer   float64
	CBS     float64
}

// convergenceProbe snapshots a CBS profiler's accuracy every tick.
type convergenceProbe struct {
	inner   *profiler.CBS
	perfect *profile.DCG
	points  []ConvergencePoint // only MCycles + one series filled
}

func (p *convergenceProbe) OnTimerTick(m *vm.VM) {
	p.inner.OnTimerTick(m)
	p.points = append(p.points, ConvergencePoint{
		MCycles: float64(m.Cycles) / 1e6,
		Timer:   profile.Accuracy(p.inner.Graph, p.perfect),
	})
}

func (p *convergenceProbe) OnYieldpoint(m *vm.VM, k vm.YieldKind) { p.inner.OnYieldpoint(m, k) }

// Convergence measures accuracy-over-time for one benchmark.
func Convergence(cfg Config, b *bench.Benchmark, input string) ([]ConvergencePoint, error) {
	size := b.SizeFor(input)
	perfect, err := PerfectDCG(cfg, b, size)
	if err != nil {
		return nil, err
	}
	runSeries := func(pc profiler.Config) ([]ConvergencePoint, error) {
		prog, err := prepare(b)
		if err != nil {
			return nil, err
		}
		probe := &convergenceProbe{inner: profiler.NewCBS(pc), perfect: perfect}
		m := vm.New(prog)
		m.MaxSteps = cfg.MaxSteps
		m.SetProfiler(probe)
		m.SetTimer(cfg.TimerPeriod)
		if _, err := m.Run(size); err != nil {
			return nil, err
		}
		return probe.points, nil
	}
	seed := int64(42)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}
	timer, err := runSeries(profiler.Config{Stride: 1, SamplesPerTick: 1, Flavour: profiler.FlavourRVM, Seed: seed})
	if err != nil {
		return nil, err
	}
	cbs, err := runSeries(profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM, Seed: seed})
	if err != nil {
		return nil, err
	}
	n := len(timer)
	if len(cbs) < n {
		n = len(cbs)
	}
	out := make([]ConvergencePoint, n)
	for i := 0; i < n; i++ {
		out[i] = ConvergencePoint{MCycles: timer[i].MCycles, Timer: timer[i].Timer, CBS: cbs[i].Timer}
	}
	return out, nil
}

// FormatConvergence renders the two series.
func FormatConvergence(name string, pts []ConvergencePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Convergence study (%s): accuracy vs executed megacycles\n", name)
	fmt.Fprintf(&sb, "%10s %12s %12s\n", "Mcycles", "timer-only", "cbs(3,16)")
	step := len(pts)/20 + 1
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		fmt.Fprintf(&sb, "%10.1f %12.1f %12.1f\n", p.MCycles, p.Timer, p.CBS)
	}
	if len(pts) > 0 {
		p := pts[len(pts)-1]
		fmt.Fprintf(&sb, "%10.1f %12.1f %12.1f  (final)\n", p.MCycles, p.Timer, p.CBS)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E9: initial-skip ablation — §4's randomized skip versus round-robin
// versus always-sampling-immediately (the skew CBS is designed to
// avoid).

// SkewRow is one skip policy's suite-mean accuracy.
type SkewRow struct {
	Policy   string
	Accuracy float64
}

// SkewAblation compares skip policies at a wide stride where the
// choice of initial skip matters most.
func SkewAblation(cfg Config, input string, stride, samples int) ([]SkewRow, error) {
	policies := []profiler.SkipPolicy{profiler.SkipRandom, profiler.SkipRoundRobin, profiler.SkipImmediate}
	var rows []SkewRow
	for _, sp := range policies {
		var accs []float64
		for _, b := range cfg.Benchmarks {
			size := b.SizeFor(input)
			perfect, err := PerfectDCG(cfg, b, size)
			if err != nil {
				return nil, err
			}
			res, err := MeasureCBS(cfg, b, size, profiler.Config{
				Stride: stride, SamplesPerTick: samples,
				Flavour: profiler.FlavourRVM, SkipPolicy: sp,
			}, perfect)
			if err != nil {
				return nil, err
			}
			accs = append(accs, res.Accuracy)
		}
		rows = append(rows, SkewRow{Policy: sp.String(), Accuracy: stats.Mean(accs)})
	}
	return rows, nil
}

// FormatSkew renders the ablation.
func FormatSkew(rows []SkewRow, stride, samples int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Initial-skip ablation (stride=%d, samples=%d): suite-mean accuracy\n", stride, samples)
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6.1f\n", r.Policy, r.Accuracy)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E10: §3 comparators — exhaustive instrumentation (Vortex-style PIC
// counters), Whaley's timer-based stack sampler, Suganuma-style code
// patching, against timer-only and CBS.

// ComparatorRow is one technique's suite-mean overhead and accuracy.
type ComparatorRow struct {
	Technique   string
	OverheadPct float64
	Accuracy    float64
}

// Comparators measures every §3 technique on the suite.
func Comparators(cfg Config, input string) ([]ComparatorRow, error) {
	type meas struct{ ovh, acc []float64 }
	results := map[string]*meas{}
	order := []string{"exhaustive-instrumented", "whaley", "code-patching", "timer-only", "cbs(3,16)"}
	for _, name := range order {
		results[name] = &meas{}
	}
	add := func(name string, o, a float64) {
		results[name].ovh = append(results[name].ovh, o)
		results[name].acc = append(results[name].acc, a)
	}

	for _, b := range cfg.Benchmarks {
		size := b.SizeFor(input)
		perfect, err := PerfectDCG(cfg, b, size)
		if err != nil {
			return nil, err
		}
		runWith := func(p any) (*vm.VM, error) {
			prog, err := prepare(b)
			if err != nil {
				return nil, err
			}
			m := vm.New(prog)
			m.MaxSteps = cfg.MaxSteps
			m.SetProfiler(p)
			m.SetTimer(cfg.TimerPeriod)
			if _, err := m.Run(size); err != nil {
				return nil, err
			}
			return m, nil
		}

		inst := profiler.NewInstrumented()
		m, err := runWith(inst)
		if err != nil {
			return nil, err
		}
		add("exhaustive-instrumented", m.Overhead()*100, profile.Accuracy(inst.Graph, perfect))

		wh := profiler.NewWhaley()
		m, err = runWith(wh)
		if err != nil {
			return nil, err
		}
		add("whaley", m.Overhead()*100, profile.Accuracy(wh.Graph, perfect))

		prog, err := prepare(b)
		if err != nil {
			return nil, err
		}
		pt := profiler.NewPatching(len(prog.Methods), 100, 64)
		mp := vm.New(prog)
		mp.MaxSteps = cfg.MaxSteps
		mp.SetProfiler(pt)
		if _, err := mp.Run(size); err != nil {
			return nil, err
		}
		add("code-patching", mp.Overhead()*100, profile.Accuracy(pt.Graph, perfect))

		res, err := MeasureCBS(cfg, b, size, profiler.TimerOnly(profiler.FlavourRVM), perfect)
		if err != nil {
			return nil, err
		}
		add("timer-only", res.OverheadPct, res.Accuracy)

		res, err = MeasureCBS(cfg, b, size, profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM}, perfect)
		if err != nil {
			return nil, err
		}
		add("cbs(3,16)", res.OverheadPct, res.Accuracy)
	}

	var rows []ComparatorRow
	for _, name := range order {
		rows = append(rows, ComparatorRow{
			Technique:   name,
			OverheadPct: stats.Mean(results[name].ovh),
			Accuracy:    stats.Mean(results[name].acc),
		})
	}
	return rows, nil
}

// FormatComparators renders the §3 comparison.
func FormatComparators(rows []ComparatorRow) string {
	var sb strings.Builder
	sb.WriteString("Profiling-technique comparison (suite means)\n")
	fmt.Fprintf(&sb, "%-26s %12s %10s\n", "Technique", "overhead%", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-26s %12.2f %10.1f\n", r.Technique, r.OverheadPct, r.Accuracy)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E11: old-vs-new inliner — §5.1 reports the new linear-threshold
// inliner beat the old conservative one by ~3% on average even with
// timer-only profiles.

// InlinerRow is one benchmark's steady-state comparison.
type InlinerRow struct {
	Name            string
	TimerSpeedupPct float64 // new vs old inliner under timer profiles
	CBSSpeedupPct   float64 // new vs old inliner under CBS profiles
}

// InlinerAblation compares OldJikes and NewLinear under identical
// profiles.
func InlinerAblation(cfg Config, input string) ([]InlinerRow, error) {
	timerCfg := profiler.TimerOnly(profiler.FlavourRVM)
	cbsCfg := profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM}
	if len(cfg.Seeds) > 0 {
		timerCfg.Seed = cfg.Seeds[0]
		cbsCfg.Seed = cfg.Seeds[0]
	}
	var rows []InlinerRow
	for _, b := range cfg.Benchmarks {
		size := b.SizeFor(input)
		w, msr := b.SteadyIters, b.SteadyIters
		oldTimer, _, err := buildOptimized(cfg, b, size, inline.NewOldJikes(), &timerCfg, w, msr)
		if err != nil {
			return nil, err
		}
		newTimer, _, err := buildOptimized(cfg, b, size, inline.NewNewLinear(), &timerCfg, w, msr)
		if err != nil {
			return nil, err
		}
		oldCBS, _, err := buildOptimized(cfg, b, size, inline.NewOldJikes(), &cbsCfg, w, msr)
		if err != nil {
			return nil, err
		}
		newCBS, _, err := buildOptimized(cfg, b, size, inline.NewNewLinear(), &cbsCfg, w, msr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, InlinerRow{
			Name:            b.Name,
			TimerSpeedupPct: speedup(oldTimer, newTimer),
			CBSSpeedupPct:   speedup(oldCBS, newCBS),
		})
	}
	return rows, nil
}

// FormatInliners renders the ablation.
func FormatInliners(rows []InlinerRow) string {
	var sb strings.Builder
	sb.WriteString("Inliner ablation: % speedup of new linear-threshold inliner over old conservative inliner\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s\n", "Benchmark", "timer profiles", "cbs profiles")
	var t, c float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %13.2f%% %13.2f%%\n", r.Name, r.TimerSpeedupPct, r.CBSSpeedupPct)
		t += r.TimerSpeedupPct
		c += r.CBSSpeedupPct
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		fmt.Fprintf(&sb, "%-12s %13.2f%% %13.2f%%\n", "average", t/n, c/n)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E12: context sensitivity — CBS sampling full stacks into a
// calling-context tree, scored with the generalized overlap metric.

// ContextRow is one benchmark's context-sensitive measurement.
type ContextRow struct {
	Name            string
	FlatAccuracy    float64 // flat DCG accuracy of the same run
	CCTAccuracy     float64 // context-tree overlap vs exhaustive CCT
	CCTNodes        int
	PerfectCCTNodes int
	OverheadPct     float64
}

// ContextStudy measures CBS in FullStack mode.
func ContextStudy(cfg Config, input string) ([]ContextRow, error) {
	seed := int64(42)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}
	var rows []ContextRow
	for _, b := range cfg.Benchmarks {
		size := b.SizeFor(input)
		perfectFlat, err := PerfectDCG(cfg, b, size)
		if err != nil {
			return nil, err
		}
		prog, err := prepare(b)
		if err != nil {
			return nil, err
		}
		ex := profiler.NewExhaustiveCCT()
		m := vm.New(prog)
		m.MaxSteps = cfg.MaxSteps
		m.SetProfiler(ex)
		if _, err := m.Run(size); err != nil {
			return nil, err
		}

		prog2, err := prepare(b)
		if err != nil {
			return nil, err
		}
		c := profiler.NewCBS(profiler.Config{
			Stride: 3, SamplesPerTick: 16,
			Flavour: profiler.FlavourRVM, Seed: seed, FullStack: true,
		})
		m2 := vm.New(prog2)
		m2.MaxSteps = cfg.MaxSteps
		m2.SetProfiler(c)
		m2.SetTimer(cfg.TimerPeriod)
		if _, err := m2.Run(size); err != nil {
			return nil, err
		}
		rows = append(rows, ContextRow{
			Name:            b.Name,
			FlatAccuracy:    profile.Accuracy(c.Graph, perfectFlat),
			CCTAccuracy:     profile.OverlapCCT(c.Tree, ex.Tree),
			CCTNodes:        c.Tree.NumNodes(),
			PerfectCCTNodes: ex.Tree.NumNodes(),
			OverheadPct:     m2.Overhead() * 100,
		})
	}
	return rows, nil
}

// FormatContext renders the context-sensitivity study.
func FormatContext(rows []ContextRow) string {
	var sb strings.Builder
	sb.WriteString("Context-sensitive extension: CBS sampling full stacks into a CCT\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s %12s %10s\n",
		"Benchmark", "flat acc", "cct acc", "cct nodes", "true nodes", "overhead%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %10.1f %10.1f %10d %12d %10.2f\n",
			r.Name, r.FlatAccuracy, r.CCTAccuracy, r.CCTNodes, r.PerfectCCTNodes, r.OverheadPct)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// E15: the §4 implementation-options discussion. In a VM whose method
// prologues already test a runtime flag, CBS overloads that flag and
// costs nothing while idle. A VM with no such test would pay "three
// executed instructions per method entry" always. This study measures
// that hypothetical: the always-on entry check's overhead across the
// suite, against the overloaded-flag implementation's.

// EntryCheckRow is one benchmark's comparison.
type EntryCheckRow struct {
	Name             string
	OverloadedPct    float64 // CBS via overloaded flag (the paper's design)
	ExplicitCheckPct float64 // plus 3 cycles on every method entry
}

// EntryCheckStudy measures both implementation options.
func EntryCheckStudy(cfg Config, input string) ([]EntryCheckRow, error) {
	seed := int64(42)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}
	var rows []EntryCheckRow
	for _, b := range cfg.Benchmarks {
		size := b.SizeFor(input)
		runWith := func(entryCost uint64) (float64, error) {
			prog, err := prepare(b)
			if err != nil {
				return 0, err
			}
			c := profiler.NewCBS(profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM, Seed: seed})
			m := vm.New(prog)
			m.MaxSteps = cfg.MaxSteps
			m.EntryCheckCost = entryCost
			m.SetProfiler(c)
			m.SetTimer(cfg.TimerPeriod)
			if _, err := m.Run(size); err != nil {
				return 0, err
			}
			return m.Overhead() * 100, nil
		}
		overloaded, err := runWith(0)
		if err != nil {
			return nil, err
		}
		explicit, err := runWith(3)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EntryCheckRow{Name: b.Name, OverloadedPct: overloaded, ExplicitCheckPct: explicit})
	}
	return rows, nil
}

// FormatEntryCheck renders the study.
func FormatEntryCheck(rows []EntryCheckRow) string {
	var sb strings.Builder
	sb.WriteString("Implementation options (§4): overloaded flag vs 3-instruction entry check\n")
	fmt.Fprintf(&sb, "%-12s %16s %18s\n", "Benchmark", "overloaded ovh%", "explicit-check ovh%")
	var a, bsum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %16.3f %18.3f\n", r.Name, r.OverloadedPct, r.ExplicitCheckPct)
		a += r.OverloadedPct
		bsum += r.ExplicitCheckPct
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		fmt.Fprintf(&sb, "%-12s %16.3f %18.3f\n", "average", a/n, bsum/n)
	}
	return sb.String()
}
