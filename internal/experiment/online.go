package experiment

import (
	"fmt"
	"strings"

	"gocbs/internal/adaptive"
	"gocbs/internal/bench"
	"gocbs/internal/inline"
	"gocbs/internal/profiler"
	"gocbs/internal/runner"
	"gocbs/internal/vm"
)

// E14: the online adaptive system. Unlike Figure 5's two-phase
// methodology (profile, stop, recompile, measure), this study runs the
// full pipeline the way a real VM does: the CBS profiler builds the
// DCG *while* the adaptive controller watches timer-tick hotness
// samples and recompiles hot methods mid-run with profile-directed
// inlining. The observable is the warmup curve: cycles per iteration
// falling as optimized code replaces baseline code.

// OnlineRow summarizes one benchmark's online-adaptation run.
type OnlineRow struct {
	Name string

	FirstIterCycles uint64 // mean of the first 3 iterations
	LastIterCycles  uint64 // mean of the last 3 iterations
	WarmupPct       float64

	MethodsRecompiled int
	InlinesApplied    int
	CompileCycles     uint64
}

// Online runs the online adaptive system over the suite.
func Online(cfg Config, input string) ([]OnlineRow, error) {
	seed := int64(42)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}
	// One job per benchmark: the adaptive run is a single inherently
	// serial pipeline (profile → recompile → keep running).
	pool := cfg.startPool()
	return runner.Map(pool, cfg.Benchmarks, func(_ int, b *bench.Benchmark) (OnlineRow, error) {
		size := b.SizeFor(input)
		iters := b.SteadyIters * 3

		prog, err := cfg.prepare(b)
		if err != nil {
			return OnlineRow{}, err
		}
		cbs := profiler.NewCBS(profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM, Seed: seed})
		ctl := adaptive.NewController(prog, inline.NewNewLinear(), cbs.Graph, inline.DefaultOptions(), 2)
		m := vm.New(prog)
		m.MaxSteps = cfg.MaxSteps
		m.SetProfiler(profiler.Combine(cbs, ctl))
		m.SetTimer(cfg.TimerPeriod)

		setup := prog.MethodByName("$Globals.setup")
		iter := prog.MethodByName("$Globals.iter")
		if _, err := m.Call(setup, vm.IntV(size)); err != nil {
			return OnlineRow{}, fmt.Errorf("%s setup: %w", b.Name, err)
		}
		perIter := make([]uint64, 0, iters)
		for i := 0; i < iters; i++ {
			before := m.Cycles
			if _, err := m.Call(iter); err != nil {
				return OnlineRow{}, fmt.Errorf("%s iter %d: %w", b.Name, i, err)
			}
			perIter = append(perIter, m.Cycles-before)
		}
		if ctl.Err != nil {
			return OnlineRow{}, fmt.Errorf("%s controller: %w", b.Name, ctl.Err)
		}
		cfg.addCycles(m.Cycles)

		mean3 := func(xs []uint64) uint64 {
			var s uint64
			for _, x := range xs {
				s += x
			}
			return s / uint64(len(xs))
		}
		first := mean3(perIter[:3])
		last := mean3(perIter[len(perIter)-3:])
		return OnlineRow{
			Name:              b.Name,
			FirstIterCycles:   first,
			LastIterCycles:    last,
			WarmupPct:         speedup(first, last),
			MethodsRecompiled: ctl.Stats.MethodsCompiled,
			InlinesApplied:    ctl.Stats.InlinesApplied,
			CompileCycles:     ctl.Stats.CompileCycles,
		}, nil
	})
}

// FormatOnline renders the study.
func FormatOnline(rows []OnlineRow) string {
	var sb strings.Builder
	sb.WriteString("Online adaptive system: warmup from baseline to optimized code\n")
	fmt.Fprintf(&sb, "%-12s %14s %14s %9s %10s %8s %12s\n",
		"Benchmark", "first cyc/it", "last cyc/it", "warmup", "recompiled", "inlines", "compile cyc")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %14d %14d %8.2f%% %10d %8d %12d\n",
			r.Name, r.FirstIterCycles, r.LastIterCycles, r.WarmupPct,
			r.MethodsRecompiled, r.InlinesApplied, r.CompileCycles)
	}
	return sb.String()
}
