// Package federation implements the two-level cbsd aggregation tier:
// program-keyed routing of pushers onto leaf daemons (Router), the
// leaf's exactly-once upstream forwarder (Forwarder), and the root's
// leaf ledger (Registry). A leaf is just a big pusher: it forwards its
// merged weight upstream as stamped increments over the same
// idempotent delta protocol VMs use, so exactly-once ingest and
// checkpoint/restart semantics compose across levels for free.
package federation

import (
	"hash/fnv"
	"sort"
)

// Router assigns programs to leaves with rendezvous (highest-random-
// weight) hashing: a program lands on the leaf whose hash(leaf,
// program) score is highest. Unlike mod-N hashing, removing or adding
// a leaf only re-routes the programs whose winning leaf changed —
// every other program keeps its leaf, which keeps pusher sequence
// streams pinned and re-route churn minimal (the property
// TestRoutingStableUnderLeafChanges pins down).
//
// Routing is by program, not pusher: all pushers of one program share
// a leaf, so that leaf's store holds the program's whole graph and the
// root never needs cross-leaf reassembly per program.
type Router struct {
	leaves []string
}

// NewRouter returns a router over the given leaf names (base URLs in
// production, actor names in the simulator). Order does not matter;
// the leaf set is defensively copied and deduplicated.
func NewRouter(leaves []string) *Router {
	seen := make(map[string]bool, len(leaves))
	uniq := make([]string, 0, len(leaves))
	for _, l := range leaves {
		if !seen[l] {
			seen[l] = true
			uniq = append(uniq, l)
		}
	}
	sort.Strings(uniq)
	return &Router{leaves: uniq}
}

// Leaves returns the router's leaf set, sorted.
func (r *Router) Leaves() []string {
	out := make([]string, len(r.leaves))
	copy(out, r.leaves)
	return out
}

// score is the rendezvous weight of (leaf, program): a 64-bit FNV-1a
// over both strings with a separator byte so ("ab","c") and ("a","bc")
// never collide, passed through an avalanche finalizer.
//
// The finalizer is load-bearing. FNV-1a's per-byte step is
// h = (h ^ b) * prime, so for two leaves hashed as prefixes the score
// difference is approximately (hA - hB) * prime^len(program) — near
// constant across all programs of one length, which parks every
// same-length key (vm-00, vm-01, ...) on a single leaf. The
// xorshift-multiply avalanche breaks that linearity so cross-leaf
// comparisons genuinely depend on the program.
func score(leaf, program string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(leaf))
	h.Write([]byte{0})
	h.Write([]byte(program))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Stafford variant 13).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Route returns the leaf that owns program, or "" when the router has
// no leaves. Ties (astronomically unlikely) break toward the
// lexicographically smaller leaf so the choice is total and stable.
func (r *Router) Route(program string) string {
	var best string
	var bestScore uint64
	for _, leaf := range r.leaves {
		if s := score(leaf, program); best == "" || s > bestScore {
			best, bestScore = leaf, s
		}
	}
	return best
}
