package federation

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"gocbs/internal/api"
	"gocbs/internal/bytecode"
	"gocbs/internal/dcgstore"
	"gocbs/internal/profile"
)

func edge(c, s, t int) profile.Edge { return profile.Edge{Caller: c, Site: s, Callee: t} }

// rootServer is a minimal root daemon: the sequenced ingest path over
// a sharded store, with test-controlled fault injection. Using the
// store's real MergeDCGFrom keeps the dedup semantics honest without
// importing internal/daemon (which imports this package).
type rootServer struct {
	store *dcgstore.Store
	// multi is the full per-build ledger; store is its default
	// substore, which keeps the pre-versioning tests unchanged.
	multi *dcgstore.Multi
	// failNext, when > 0, answers that many requests with a 500
	// WITHOUT applying them.
	failNext atomic.Int32
	// dropNext, when > 0, APPLIES that many requests but kills the
	// connection before the response — the lost-ack hazard.
	dropNext atomic.Int32
}

func newRootServer() *rootServer {
	multi := dcgstore.NewMulti(8)
	return &rootServer{store: multi.Default(), multi: multi}
}

func (rs *rootServer) handler(t testing.TB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rs.failNext.Load() > 0 {
			rs.failNext.Add(-1)
			api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "injected")
			return
		}
		if r.URL.Path == api.PathManifest {
			man, err := bytecode.DecodeManifest(r.Body)
			if err != nil {
				t.Errorf("root: bad manifest: %v", err)
				api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
				return
			}
			edges, weight, err := rs.multi.RegisterManifest(man)
			if err != nil {
				api.WriteError(w, http.StatusServiceUnavailable, api.CodeCapacity, err.Error())
				return
			}
			fmt.Fprintf(w, `{"registered":true,"carried_edges":%d,"carried_weight":%g}`, edges, weight)
			return
		}
		if r.URL.Path != api.PathIngest {
			t.Errorf("root saw unexpected path %q", r.URL.Path)
		}
		g, err := profile.ReadDCG(r.Body)
		if err != nil {
			t.Errorf("root: bad payload: %v", err)
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
			return
		}
		var seq uint64
		pusher := r.Header.Get(api.HeaderPusher)
		if pusher != "" {
			if seq, err = strconv.ParseUint(r.Header.Get(api.HeaderSeq), 10, 64); err != nil {
				t.Errorf("root: bad seq: %v", err)
			}
		}
		dest := rs.store
		if prog := r.Header.Get(api.HeaderProgram); prog != "" {
			dest = rs.multi.For(api.ProgramKey{Program: prog, Version: r.Header.Get(api.HeaderProgramVersion)})
			if dest == nil {
				api.WriteError(w, http.StatusServiceUnavailable, api.CodeCapacity, "ledger full")
				return
			}
		}
		applied := dest.MergeDCGFrom(pusher, seq, g)
		if rs.dropNext.Load() > 0 {
			rs.dropNext.Add(-1)
			panic(http.ErrAbortHandler)
		}
		fmt.Fprintf(w, `{"applied":%v,"duplicate":%v}`, applied, !applied)
	})
}

// fastUpstream returns an api client for the root with near-zero
// backoff and no retries (tests drive every attempt explicitly).
func fastUpstream(url string) *api.Client {
	c := api.NewClient(url)
	c.Retries = -1
	return c
}

func mustEqualDCG(t *testing.T, label string, got, want *profile.DCG) {
	t.Helper()
	var gb, wb bytes.Buffer
	if _, err := got.WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if _, err := want.WriteTo(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Errorf("%s: graphs differ: %d edges/%v weight vs %d edges/%v weight",
			label, got.NumEdges(), got.Total(), want.NumEdges(), want.Total())
	}
}

// TestRoutingStableUnderLeafChanges is the satellite property test:
// under rendezvous hashing, removing a leaf re-routes ONLY the
// programs that lived on it, and adding a leaf moves programs ONLY
// onto the new leaf. Everything else keeps its leaf, so pusher
// sequence streams stay pinned.
func TestRoutingStableUnderLeafChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	leaves := []string{"leaf-0", "leaf-1", "leaf-2", "leaf-3"}
	programs := make([]string, 500)
	for i := range programs {
		programs[i] = fmt.Sprintf("prog-%d-%d", i, rng.Int63())
	}
	full := NewRouter(leaves)

	// Every program routes, deterministically, onto a real leaf.
	onLeaf := make(map[string]int)
	for _, p := range programs {
		l := full.Route(p)
		if l == "" {
			t.Fatalf("program %q routed nowhere", p)
		}
		if again := NewRouter(leaves).Route(p); again != l {
			t.Fatalf("routing not deterministic: %q -> %q then %q", p, l, again)
		}
		onLeaf[l]++
	}
	// Rendezvous should spread 500 programs over 4 leaves roughly
	// evenly; a leaf with < 10% occupancy means the hash is broken.
	for _, l := range leaves {
		if onLeaf[l] < 50 {
			t.Errorf("leaf %s got only %d/500 programs; distribution broken: %v", l, onLeaf[l], onLeaf)
		}
	}

	// Same-length keys must spread too. Raw FNV-1a prefix hashing fails
	// exactly here: with the leaf hashed first, the cross-leaf score
	// difference is nearly constant for keys of one length, so every
	// vm-NN landed on a single leaf until the avalanche finalizer.
	sameLen := make(map[string]int)
	for i := 0; i < 64; i++ {
		sameLen[full.Route(fmt.Sprintf("vm-%02d", i))]++
	}
	for _, l := range leaves {
		if sameLen[l] < 4 {
			t.Errorf("leaf %s got only %d/64 same-length keys; distribution broken: %v", l, sameLen[l], sameLen)
		}
	}

	// Remove leaf-2: only its programs may move.
	shrunk := NewRouter([]string{"leaf-0", "leaf-1", "leaf-3"})
	moved := 0
	for _, p := range programs {
		before, after := full.Route(p), shrunk.Route(p)
		if before != "leaf-2" && before != after {
			t.Errorf("program %q moved %s -> %s though %s still exists", p, before, after, before)
		}
		if before == "leaf-2" {
			moved++
		}
	}
	if moved != onLeaf["leaf-2"] {
		t.Errorf("moved %d programs, want exactly leaf-2's %d", moved, onLeaf["leaf-2"])
	}

	// Add leaf-4: programs may only move TO the new leaf.
	grown := NewRouter(append(leaves, "leaf-4"))
	for _, p := range programs {
		before, after := full.Route(p), grown.Route(p)
		if before != after && after != "leaf-4" {
			t.Errorf("program %q moved %s -> %s on leaf ADD; only moves onto leaf-4 are legal", p, before, after)
		}
	}
}

// TestReRoutedPusherDoesNotDoubleCountAtRoot is the second half of the
// satellite property test: a pusher that drains at its old leaf and
// then continues its stream at a new leaf contributes its graph to the
// root exactly once, even though the two leaves forward under separate
// upstream identities.
func TestReRoutedPusherDoesNotDoubleCountAtRoot(t *testing.T) {
	root := newRootServer()
	ts := httptest.NewServer(root.handler(t))
	defer ts.Close()

	newLeaf := func(id string) (*dcgstore.Store, *Forwarder) {
		store := dcgstore.New(4)
		f, err := NewForwarder(ForwarderConfig{
			ID:       id,
			Upstream: fastUpstream(ts.URL),
			Source:   store.Snapshot,
		})
		if err != nil {
			t.Fatal(err)
		}
		return store, f
	}
	leafA, fwdA := newLeaf("leaf-a")
	leafB, fwdB := newLeaf("leaf-b")

	// The pusher's source graph grows monotonically; it streams deltas
	// to whichever leaf currently owns its program.
	src := profile.NewDCG()
	push := func(store *dcgstore.Store, seq uint64, delta *profile.DCG) {
		if !store.MergeDCGFrom("vm-1", seq, delta.Clone()) {
			t.Fatalf("leaf rejected seq %d as duplicate", seq)
		}
	}

	// Rounds 1-2 land on leaf A and are forwarded up.
	d1 := profile.NewDCG()
	d1.AddSample(edge(1, 1, 2), 10)
	src.Merge(d1)
	push(leafA, 1, d1)
	d2 := profile.NewDCG()
	d2.AddSample(edge(1, 1, 2), 5)
	d2.AddSample(edge(2, 3, 4), 7)
	src.Merge(d2)
	push(leafA, 2, d2)
	if _, err := fwdA.Flush(); err != nil {
		t.Fatalf("leaf A flush: %v", err)
	}

	// Re-route: the pusher drains at leaf A (everything above is
	// acknowledged — the drain-before-switch rule), then resumes its
	// sequence stream at leaf B. The same seq-3 increment retried at
	// leaf B after a lost response dedups in LEAF B's store; leaf A
	// never sees it, so the root cannot see it twice.
	d3 := profile.NewDCG()
	d3.AddSample(edge(2, 3, 4), 3)
	src.Merge(d3)
	push(leafB, 3, d3)
	if leafB.MergeDCGFrom("vm-1", 3, d3.Clone()) {
		t.Fatal("leaf B applied a duplicate of seq 3")
	}
	if _, err := fwdB.Flush(); err != nil {
		t.Fatalf("leaf B flush: %v", err)
	}
	// Leaf A flushes again after the switch: it has nothing new for
	// this pusher, so the root gains no weight from it.
	if _, err := fwdA.Flush(); err != nil {
		t.Fatalf("leaf A post-switch flush: %v", err)
	}

	mustEqualDCG(t, "root vs pusher source", root.store.Snapshot(), src)
	// And the composition invariant: root == merge of the two leaves'
	// acknowledged graphs.
	comp := fwdA.Acknowledged()
	comp.Merge(fwdB.Acknowledged())
	mustEqualDCG(t, "root vs leaf acks", root.store.Snapshot(), comp)
}

// TestForwarderRestartExactness: a forwarder that dies after the root
// applied an increment but before the ack landed re-sends the frozen
// increment from its write-ahead state on restart, and the root
// deduplicates — byte-identical totals, no loss, no double count.
func TestForwarderRestartExactness(t *testing.T) {
	root := newRootServer()
	ts := httptest.NewServer(root.handler(t))
	defer ts.Close()

	statePath := filepath.Join(t.TempDir(), "fwd-state.json")
	store := dcgstore.New(4)
	fwd, err := NewForwarder(ForwarderConfig{
		ID: "leaf-0", Upstream: fastUpstream(ts.URL), Source: store.Snapshot, StatePath: statePath,
	})
	if err != nil {
		t.Fatal(err)
	}

	g1 := profile.NewDCG()
	g1.AddSample(edge(1, 2, 3), 4)
	store.MergeDCGFrom("vm-1", 1, g1)
	if resp, err := fwd.Flush(); err != nil || !resp.Forwarded || resp.Seq != 1 {
		t.Fatalf("first flush: resp=%+v err=%v", resp, err)
	}

	// More weight arrives; the root applies the forward but the ack is
	// lost mid-flight (connection killed after merge).
	g2 := profile.NewDCG()
	g2.AddSample(edge(1, 2, 3), 6)
	g2.AddSample(edge(9, 9, 9), 1)
	store.MergeDCGFrom("vm-1", 2, g2)
	root.dropNext.Store(1)
	resp, err := fwd.Flush()
	if err == nil {
		t.Fatal("flush with dropped ack must error")
	}
	if resp.Pending != 1 || resp.Seq != 1 {
		t.Fatalf("post-drop resp = %+v, want 1 pending above seq 1", resp)
	}

	// "Crash": rebuild the forwarder from the write-ahead state alone.
	fwd2, err := NewForwarder(ForwarderConfig{
		ID: "leaf-0", Upstream: fastUpstream(ts.URL), Source: store.Snapshot, StatePath: statePath,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if fwd2.Pending() != 1 {
		t.Fatalf("restarted forwarder has %d pending, want 1", fwd2.Pending())
	}
	if resp, err := fwd2.Flush(); err != nil || !resp.Forwarded || resp.Seq != 2 {
		t.Fatalf("post-restart flush: resp=%+v err=%v", resp, err)
	}

	// The re-sent increment was deduplicated, not re-merged.
	if d := root.store.Stats().Duplicates; d != 1 {
		t.Errorf("root deduplicated %d increments, want 1", d)
	}
	mustEqualDCG(t, "root vs leaf store", root.store.Snapshot(), store.Snapshot())
	mustEqualDCG(t, "root vs restarted acked", root.store.Snapshot(), fwd2.Acknowledged())

	// A third restart starts clean: nothing pending, and a flush with
	// no new weight pushes nothing.
	fwd3, err := NewForwarder(ForwarderConfig{
		ID: "leaf-0", Upstream: fastUpstream(ts.URL), Source: store.Snapshot, StatePath: statePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := fwd3.Flush(); err != nil || !resp.Forwarded || resp.Edges != 0 || resp.Seq != 2 {
		t.Fatalf("idle flush after clean restart: resp=%+v err=%v", resp, err)
	}
}

// TestForwarderPersistFailureConservesWeight: a capture whose
// write-ahead persist fails is rolled back to the PRIOR baseline, so
// the next flush re-captures the same delta — not the whole store. The
// regression this pins: rolling back to a nil baseline made the next
// flush send the full snapshot under a new seq, re-counting weight the
// root had already acknowledged under earlier sequence numbers.
func TestForwarderPersistFailureConservesWeight(t *testing.T) {
	root := newRootServer()
	ts := httptest.NewServer(root.handler(t))
	defer ts.Close()

	stateDir := filepath.Join(t.TempDir(), "state")
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		t.Fatal(err)
	}
	store := dcgstore.New(4)
	fwd, err := NewForwarder(ForwarderConfig{
		ID:        "leaf-0",
		Upstream:  fastUpstream(ts.URL),
		Source:    store.Snapshot,
		StatePath: filepath.Join(stateDir, "fwd-state.json"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Seq 1 forwards and acks 10 weight.
	g1 := profile.NewDCG()
	g1.AddSample(edge(1, 2, 3), 10)
	store.MergeDCGFrom("vm-1", 1, g1)
	if resp, err := fwd.Flush(); err != nil || !resp.Forwarded || resp.Seq != 1 {
		t.Fatalf("first flush: resp=%+v err=%v", resp, err)
	}

	// The store grows by 5, and persisting the next capture fails (the
	// state directory is gone, so the temp-file create fails).
	g2 := profile.NewDCG()
	g2.AddSample(edge(1, 2, 3), 5)
	store.MergeDCGFrom("vm-1", 2, g2)
	if err := os.RemoveAll(stateDir); err != nil {
		t.Fatal(err)
	}
	if _, err := fwd.Flush(); err == nil {
		t.Fatal("flush with a failing persist must error")
	}
	if p := fwd.Pending(); p != 0 {
		t.Fatalf("rolled-back capture left %d pending, want 0", p)
	}

	// Persistence recovers; the next flush must forward ONLY the 5-unit
	// delta (as seq 2), never re-send the acknowledged 10.
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		t.Fatal(err)
	}
	resp, err := fwd.Flush()
	if err != nil || !resp.Forwarded || resp.Seq != 2 {
		t.Fatalf("recovery flush: resp=%+v err=%v", resp, err)
	}
	if resp.Weight != 5 {
		t.Errorf("recovery flush captured %v weight, want exactly the 5-unit delta", resp.Weight)
	}
	mustEqualDCG(t, "root vs leaf store", root.store.Snapshot(), store.Snapshot())
	if got, want := root.store.Snapshot().Total(), store.Snapshot().Total(); got != want {
		t.Errorf("root holds %v weight, leaf holds %v — conservation violated", got, want)
	}
	if d := root.store.Stats().Duplicates; d != 0 {
		t.Errorf("root saw %d duplicates, want 0", d)
	}
}

// TestForwarderTransientUpstreamFailure: a 500 from the root keeps the
// increment pending (nothing applied), and the next flush delivers it
// plus newer weight without gaps.
func TestForwarderTransientUpstreamFailure(t *testing.T) {
	root := newRootServer()
	ts := httptest.NewServer(root.handler(t))
	defer ts.Close()

	store := dcgstore.New(4)
	fwd, err := NewForwarder(ForwarderConfig{
		ID: "leaf-0", Upstream: fastUpstream(ts.URL), Source: store.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}

	g := profile.NewDCG()
	g.AddSample(edge(1, 1, 1), 2)
	store.MergeDCGFrom("vm-1", 1, g)
	root.failNext.Store(1)
	if _, err := fwd.Flush(); err == nil {
		t.Fatal("flush against failing root must error")
	}
	if fwd.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", fwd.Pending())
	}

	g2 := profile.NewDCG()
	g2.AddSample(edge(2, 2, 2), 3)
	store.MergeDCGFrom("vm-1", 2, g2)
	if resp, err := fwd.Flush(); err != nil || !resp.Forwarded || resp.Seq != 2 {
		t.Fatalf("recovery flush: resp=%+v err=%v", resp, err)
	}
	mustEqualDCG(t, "root vs leaf store", root.store.Snapshot(), store.Snapshot())
	if d := root.store.Stats().Duplicates; d != 0 {
		t.Errorf("root saw %d duplicates, want 0 (500 must not apply)", d)
	}
}

func TestRegistryUpsertAndList(t *testing.T) {
	r := NewRegistry()
	if n, ok := r.Register(api.LeafStatus{ID: "leaf-1", Seq: 1}); n != 1 || !ok {
		t.Fatalf("count = %d ok = %v", n, ok)
	}
	if n, ok := r.Register(api.LeafStatus{ID: "leaf-0", Seq: 2}); n != 2 || !ok {
		t.Fatalf("count = %d ok = %v", n, ok)
	}
	// Heartbeat: same ID upserts, count unchanged.
	if n, ok := r.Register(api.LeafStatus{ID: "leaf-1", Seq: 9}); n != 2 || !ok {
		t.Fatalf("upsert count = %d ok = %v", n, ok)
	}
	ls := r.List()
	if len(ls) != 2 || ls[0].ID != "leaf-0" || ls[1].ID != "leaf-1" || ls[1].Seq != 9 {
		t.Fatalf("list = %+v", ls)
	}
}

// TestRegistryCapAndExpiry: registration is an unauthenticated upsert,
// so the registry must bound itself — a flood of distinct IDs stops at
// MaxLeaves, heartbeats from known leaves still land at capacity, and
// entries that stop heartbeating age out to make room.
func TestRegistryCapAndExpiry(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	r := NewRegistry()
	r.now = func() time.Time { return now }

	for i := 0; i < MaxLeaves; i++ {
		if _, ok := r.Register(api.LeafStatus{ID: fmt.Sprintf("leaf-%04d", i)}); !ok {
			t.Fatalf("registration %d refused below the cap", i)
		}
	}
	if n, ok := r.Register(api.LeafStatus{ID: "attacker-0"}); ok {
		t.Fatalf("registration beyond MaxLeaves accepted (count %d)", n)
	}
	if r.Len() != MaxLeaves {
		t.Fatalf("len = %d, want %d", r.Len(), MaxLeaves)
	}
	// A known leaf's heartbeat still lands at capacity.
	if _, ok := r.Register(api.LeafStatus{ID: "leaf-0000", Seq: 7}); !ok {
		t.Fatal("heartbeat from a known leaf refused at capacity")
	}

	// Everything except leaf-0000 (re-heartbeated below) goes quiet past
	// the TTL; a fresh leaf then evicts the stale entries and registers.
	now = now.Add(LeafTTL / 2)
	if _, ok := r.Register(api.LeafStatus{ID: "leaf-0000", Seq: 8}); !ok {
		t.Fatal("mid-TTL heartbeat refused")
	}
	now = now.Add(LeafTTL/2 + time.Second)
	if n, ok := r.Register(api.LeafStatus{ID: "leaf-new"}); !ok || n != 2 {
		t.Fatalf("post-expiry registration: count = %d ok = %v, want 2 live leaves", n, ok)
	}
	ls := r.List()
	if len(ls) != 2 || ls[0].ID != "leaf-0000" || ls[1].ID != "leaf-new" {
		t.Fatalf("post-expiry list = %+v", ls)
	}
}

// TestForwarderRelaysKeyedBuildsAndManifests: a leaf whose store holds
// per-(program, version) substores and registered manifests forwards
// all of it — manifests first, in registration order, then each keyed
// stream — and the root reconstructs the same per-build ledger. A
// restart from the write-ahead state neither loses nor re-counts any
// keyed weight, and re-relayed manifests are idempotent at the root.
func TestForwarderRelaysKeyedBuildsAndManifests(t *testing.T) {
	root := newRootServer()
	ts := httptest.NewServer(root.handler(t))
	defer ts.Close()

	leaf := dcgstore.NewMulti(4)
	kA := api.ProgramKey{Program: "compress", Version: "00000000aaaaaaaa"}
	kB := api.ProgramKey{Program: "compress", Version: "00000000bbbbbbbb"}
	manA := &bytecode.Manifest{Program: kA.Program, Version: kA.Version,
		Methods: []bytecode.MethodFingerprint{{Name: "$Globals.iter", Hash: 1}},
		Sites:   []bytecode.SiteFingerprint{{Owner: 0, PC: 3}}}
	if _, _, err := leaf.RegisterManifest(manA); err != nil {
		t.Fatal(err)
	}
	gDef := profile.NewDCG()
	gDef.AddSample(edge(5, 5, 6), 2)
	leaf.Default().MergeDCGFrom("vm-0", 1, gDef)
	gA := profile.NewDCG()
	gA.AddSample(edge(0, 3, 1), 10)
	leaf.For(kA).MergeDCGFrom("vm-1", 1, gA)

	statePath := filepath.Join(t.TempDir(), "fwd-state.json")
	mkFwd := func() *Forwarder {
		t.Helper()
		fwd, err := NewForwarder(ForwarderConfig{
			ID: "leaf-0", Upstream: fastUpstream(ts.URL),
			Source: leaf.Default().Snapshot,
			KeyedSource: func() map[api.ProgramKey]*profile.DCG {
				out := make(map[api.ProgramKey]*profile.DCG)
				for _, k := range leaf.Keys() {
					out[k] = leaf.Lookup(k).Snapshot()
				}
				return out
			},
			Manifests: leaf.ManifestsInOrder,
			StatePath: statePath,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fwd
	}

	fwd := mkFwd()
	if resp, err := fwd.Flush(); err != nil || !resp.Forwarded {
		t.Fatalf("first flush: resp=%+v err=%v", resp, err)
	}
	if root.multi.Manifest(kA) == nil {
		t.Fatal("manifest A not relayed to root")
	}
	if root.multi.Lookup(kA) == nil {
		t.Fatal("root has no substore for build A")
	}
	mustEqualDCG(t, "root build A", root.multi.Lookup(kA).Snapshot(), gA)
	mustEqualDCG(t, "root default", root.store.Snapshot(), gDef)

	// A second build appears at the leaf (manifest + data), plus more
	// weight on the first: one flush relays the new manifest and both
	// keyed deltas.
	manB := &bytecode.Manifest{Program: kB.Program, Version: kB.Version,
		Methods: []bytecode.MethodFingerprint{{Name: "$Globals.iter", Hash: 2}},
		Sites:   []bytecode.SiteFingerprint{{Owner: 0, PC: 3}}}
	if _, _, err := leaf.RegisterManifest(manB); err != nil {
		t.Fatal(err)
	}
	gB := profile.NewDCG()
	gB.AddSample(edge(0, 3, 2), 7)
	leaf.For(kB).MergeDCGFrom("vm-2", 1, gB)
	more := profile.NewDCG()
	more.AddSample(edge(0, 3, 1), 5)
	leaf.For(kA).MergeDCGFrom("vm-1", 2, more)
	if resp, err := fwd.Flush(); err != nil || !resp.Forwarded {
		t.Fatalf("second flush: resp=%+v err=%v", resp, err)
	}
	if root.multi.Manifest(kB) == nil {
		t.Fatal("manifest B not relayed to root")
	}
	mustEqualDCG(t, "root build A after growth", root.multi.Lookup(kA).Snapshot(), leaf.Lookup(kA).Snapshot())
	mustEqualDCG(t, "root build B", root.multi.Lookup(kB).Snapshot(), leaf.Lookup(kB).Snapshot())
	mustEqualDCG(t, "acked keyed A", fwd.AcknowledgedKeyed(kA), leaf.Lookup(kA).Snapshot())
	mustEqualDCG(t, "acked keyed B", fwd.AcknowledgedKeyed(kB), leaf.Lookup(kB).Snapshot())

	// Restart from the write-ahead state: nothing pending, an idle
	// flush moves nothing, and the keyed ledgers still agree — the
	// restarted forwarder re-relays no manifest and re-counts no edge.
	fwd2 := mkFwd()
	if fwd2.Pending() != 0 {
		t.Fatalf("restarted forwarder has %d pending, want 0", fwd2.Pending())
	}
	if resp, err := fwd2.Flush(); err != nil || resp.Edges != 0 {
		t.Fatalf("idle flush after restart: resp=%+v err=%v", resp, err)
	}
	mustEqualDCG(t, "root build A after restart", root.multi.Lookup(kA).Snapshot(), leaf.Lookup(kA).Snapshot())
	mustEqualDCG(t, "root build B after restart", root.multi.Lookup(kB).Snapshot(), leaf.Lookup(kB).Snapshot())
	mustEqualDCG(t, "acked keyed A after restart", fwd2.AcknowledgedKeyed(kA), leaf.Lookup(kA).Snapshot())
}
