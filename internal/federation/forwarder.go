package federation

import (
	"bytes"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"gocbs/internal/api"
	"gocbs/internal/profile"
)

// Forwarder streams a leaf store's accumulated weight upstream to the
// root as stamped, exactly-once increments — the leaf-side half of the
// federation tentpole. It is a DeltaPusher grown a write-ahead state
// file: every capture is persisted *before* the first push attempt, so
// a leaf that crashes after a push whose response was lost re-sends
// the identical frozen increment on restart and the root deduplicates
// it by (pusher, seq) — weight can neither vanish nor double-count
// across a leaf restart.
//
// Crash matrix (state file written atomically via temp + rename):
//
//   - crash before capture persists: the weight is still in the
//     store snapshot; the next capture picks it up under a new seq.
//   - crash after capture persists, before/through the push: the
//     increment is in pending; restart re-sends it verbatim. If the
//     push had actually landed, the root drops it as a duplicate.
//   - crash after the ack persists: nothing outstanding.
//
// The store snapshot the forwarder captures from must never shrink
// (leaves do not decay locally — decay is the root's job), and on a
// graceful restart the leaf checkpoints its store alongside this
// state, so the restored snapshot is always >= the persisted capture
// baseline.
type Forwarder struct {
	// ID is the leaf's upstream pusher identity.
	id string
	// upstream is the api client aimed at the root.
	upstream *api.Client
	// source returns the leaf store's consistent snapshot.
	source func() *profile.DCG
	// statePath, when non-empty, persists the write-ahead state.
	statePath string

	mu sync.Mutex
	// last is the snapshot baseline of the previous capture.
	last *profile.DCG
	// seq is the last allocated sequence number.
	seq uint64
	// pending holds captured-but-unacknowledged increments in
	// sequence order, frozen (bytes never change once stamped).
	pending []stampedDelta
	// acked accumulates every increment the root acknowledged — by
	// construction exactly the graph the root owes this leaf.
	acked *profile.DCG

	forwards uint64
	errs     uint64
}

// stampedDelta is one frozen increment.
type stampedDelta struct {
	seq   uint64
	delta *profile.DCG
}

// ForwarderConfig configures a leaf's upstream forwarder.
type ForwarderConfig struct {
	// ID is the leaf's upstream pusher identity. Required unless a
	// state file already records one.
	ID string
	// Upstream is the api client aimed at the root. Required.
	Upstream *api.Client
	// Source returns the leaf store's consistent snapshot. Required.
	Source func() *profile.DCG
	// StatePath, when non-empty, persists the forwarder's write-ahead
	// state (capture baseline, sequence counter, pending increments)
	// across restarts. Without it a restarted leaf would re-forward
	// its whole restored store under fresh stamps.
	StatePath string
}

// NewForwarder returns a forwarder, restoring persisted state from
// cfg.StatePath when the file exists. A persisted identity must match
// cfg.ID (the sequence stream belongs to the identity); cfg.ID may be
// empty to adopt the persisted one.
func NewForwarder(cfg ForwarderConfig) (*Forwarder, error) {
	if cfg.Upstream == nil {
		return nil, errors.New("federation: forwarder needs an upstream client")
	}
	if cfg.Source == nil {
		return nil, errors.New("federation: forwarder needs a store source")
	}
	f := &Forwarder{
		id:        cfg.ID,
		upstream:  cfg.Upstream,
		source:    cfg.Source,
		statePath: cfg.StatePath,
		acked:     profile.NewDCG(),
	}
	if cfg.StatePath != "" {
		if err := f.restore(cfg.StatePath, cfg.ID); err != nil {
			return nil, err
		}
	}
	if f.id == "" {
		// Fresh leaf with no configured identity: mint a random one
		// (persisted on first flush, so restarts keep the stream).
		f.id = newLeafID()
	}
	return f, nil
}

// newLeafID mints a random upstream identity for a leaf that was not
// given one. Random, not host-derived: two leaves colliding in the
// root's sequence table would have increments silently dropped as
// duplicates of each other's.
func newLeafID() string {
	var b [8]byte
	crand.Read(b[:]) // rand.Read never fails on supported platforms
	return "leaf-" + hex.EncodeToString(b[:])
}

// ID returns the leaf's upstream pusher identity.
func (f *Forwarder) ID() string { return f.id }

// Flush captures the weight the store accumulated since the previous
// capture as a new stamped increment, persists the state, then pushes
// every pending increment upstream in order. A flush with nothing new
// and nothing pending is a no-op. The returned response reports what
// this flush captured and what remains pending (non-zero only when an
// upstream push failed; those increments stay frozen for the next
// flush).
func (f *Forwarder) Flush() (api.FlushResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	resp := api.FlushResponse{}
	cur := f.source()
	delta := cur.DeltaSince(f.last)
	if delta.NumEdges() > 0 {
		prev := f.last
		f.seq++
		f.pending = append(f.pending, stampedDelta{seq: f.seq, delta: delta})
		f.last = cur.Clone()
		resp.Edges = delta.NumEdges()
		resp.Weight = delta.Total()
		// Write-ahead: the capture must hit disk before the first push
		// attempt, or a crash after a successful push would re-capture
		// and double-send this weight under a new stamp.
		if err := f.persistLocked(); err != nil {
			// Roll the capture back to the PRIOR baseline, so the next
			// flush re-captures exactly this delta (plus anything newer)
			// under the same seq. Resetting the baseline to nil instead
			// would re-capture the whole store — weight the root already
			// acknowledged under earlier seqs, double-counted under a
			// fresh stamp.
			f.pending = f.pending[:len(f.pending)-1]
			f.seq--
			f.last = prev
			f.errs++
			return resp, fmt.Errorf("federation: persist capture: %w", err)
		}
	}

	for len(f.pending) > 0 {
		head := f.pending[0]
		if _, err := f.upstream.PushDelta(f.id, head.seq, encodeDCG(head.delta)); err != nil {
			f.errs++
			resp.Pending = len(f.pending)
			resp.Seq = f.ackedSeqLocked()
			return resp, fmt.Errorf("federation: forward seq %d: %w", head.seq, err)
		}
		f.pending = f.pending[1:]
		f.acked.Merge(head.delta)
		f.forwards++
		if err := f.persistLocked(); err != nil {
			// The ack is applied in memory; a stale state file only
			// means a redundant (deduplicated) re-send after a crash.
			f.errs++
			resp.Pending = len(f.pending)
			resp.Seq = f.ackedSeqLocked()
			return resp, fmt.Errorf("federation: persist ack: %w", err)
		}
	}
	resp.Forwarded = true
	resp.Seq = f.seq
	return resp, nil
}

// ackedSeqLocked returns the highest acknowledged sequence: the seq
// just below the oldest pending increment, or the counter itself when
// nothing is pending.
func (f *Forwarder) ackedSeqLocked() uint64 {
	if len(f.pending) > 0 {
		return f.pending[0].seq - 1
	}
	return f.seq
}

// Acknowledged returns a clone of the cumulative graph the root has
// acknowledged from this leaf — what the conservation checker holds
// the root accountable for.
func (f *Forwarder) Acknowledged() *profile.DCG {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.acked.Clone()
}

// Pending reports how many captured increments await acknowledgement.
func (f *Forwarder) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Status returns the leaf's registration/heartbeat body.
func (f *Forwarder) Status(addr string) api.LeafStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return api.LeafStatus{
		ID:     f.id,
		Addr:   addr,
		Seq:    f.ackedSeqLocked(),
		Edges:  f.acked.NumEdges(),
		Weight: f.acked.Total(),
	}
}

// Metrics returns the forwarder's /metrics section.
func (f *Forwarder) Metrics() *api.ForwardMetrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return &api.ForwardMetrics{
		Seq:       f.seq,
		Pending:   len(f.pending),
		Forwards:  f.forwards,
		Errors:    f.errs,
		AckEdges:  f.acked.NumEdges(),
		AckWeight: f.acked.Total(),
	}
}

// forwarderState is the on-disk write-ahead state. Graph payloads are
// the canonical DCGB wire format (base64 in JSON).
type forwarderState struct {
	ID      string         `json:"id"`
	Seq     uint64         `json:"seq"`
	Last    []byte         `json:"last,omitempty"`
	Acked   []byte         `json:"acked,omitempty"`
	Pending []pendingState `json:"pending,omitempty"`
}

type pendingState struct {
	Seq   uint64 `json:"seq"`
	Delta []byte `json:"delta"`
}

func encodeDCG(g *profile.DCG) []byte {
	var buf bytes.Buffer
	g.WriteTo(&buf) // in-memory write cannot fail
	return buf.Bytes()
}

func decodeDCG(b []byte) (*profile.DCG, error) {
	if len(b) == 0 {
		return nil, nil
	}
	return profile.ReadDCG(bytes.NewReader(b))
}

// persistLocked writes the state atomically (temp file + rename into
// place), a no-op without a StatePath.
func (f *Forwarder) persistLocked() error {
	if f.statePath == "" {
		return nil
	}
	st := forwarderState{ID: f.id, Seq: f.seq}
	if f.last != nil {
		st.Last = encodeDCG(f.last)
	}
	if f.acked.NumEdges() > 0 {
		st.Acked = encodeDCG(f.acked)
	}
	for _, p := range f.pending {
		st.Pending = append(st.Pending, pendingState{Seq: p.seq, Delta: encodeDCG(p.delta)})
	}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(f.statePath), ".fwd-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), f.statePath)
}

// restore loads persisted state; a missing file is a fresh start.
func (f *Forwarder) restore(path, wantID string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st forwarderState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("federation: corrupt forwarder state %s: %w", path, err)
	}
	if wantID != "" && st.ID != wantID {
		return fmt.Errorf("federation: forwarder state %s belongs to %q, not %q (sequence streams are per identity)",
			path, st.ID, wantID)
	}
	f.id = st.ID
	f.seq = st.Seq
	if f.last, err = decodeDCG(st.Last); err != nil {
		return fmt.Errorf("federation: corrupt capture baseline in %s: %w", path, err)
	}
	acked, err := decodeDCG(st.Acked)
	if err != nil {
		return fmt.Errorf("federation: corrupt acked graph in %s: %w", path, err)
	}
	if acked != nil {
		f.acked = acked
	}
	for _, p := range st.Pending {
		d, err := decodeDCG(p.Delta)
		if err != nil {
			return fmt.Errorf("federation: corrupt pending increment %d in %s: %w", p.Seq, path, err)
		}
		f.pending = append(f.pending, stampedDelta{seq: p.Seq, delta: d})
	}
	return nil
}
