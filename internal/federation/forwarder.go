package federation

import (
	"bytes"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gocbs/internal/api"
	"gocbs/internal/bytecode"
	"gocbs/internal/profile"
)

// Forwarder streams a leaf store's accumulated weight upstream to the
// root as stamped, exactly-once increments — the leaf-side half of the
// federation tentpole. It is a DeltaPusher grown a write-ahead state
// file: every capture is persisted *before* the first push attempt, so
// a leaf that crashes after a push whose response was lost re-sends
// the identical frozen increment on restart and the root deduplicates
// it by (pusher, seq) — weight can neither vanish nor double-count
// across a leaf restart.
//
// Crash matrix (state file written atomically via temp + rename):
//
//   - crash before capture persists: the weight is still in the
//     store snapshot; the next capture picks it up under a new seq.
//   - crash after capture persists, before/through the push: the
//     increment is in pending; restart re-sends it verbatim. If the
//     push had actually landed, the root drops it as a duplicate.
//   - crash after the ack persists: nothing outstanding.
//
// The store snapshot the forwarder captures from must never shrink
// (leaves do not decay locally — decay is the root's job), and on a
// graceful restart the leaf checkpoints its store alongside this
// state, so the restored snapshot is always >= the persisted capture
// baseline.
type Forwarder struct {
	// ID is the leaf's upstream pusher identity.
	id string
	// upstream is the api client aimed at the root.
	upstream *api.Client
	// source returns the leaf store's consistent snapshot.
	source func() *profile.DCG
	// keyedSource returns per-(program, version) snapshots; nil leaves
	// forward only the default stream.
	keyedSource func() map[api.ProgramKey]*profile.DCG
	// manifests returns the leaf's registered manifests in registration
	// order, for upward relay; nil skips manifest relay.
	manifests func() []*bytecode.Manifest
	// statePath, when non-empty, persists the write-ahead state.
	statePath string

	mu sync.Mutex
	// last is the snapshot baseline of the previous capture.
	last *profile.DCG
	// lastKeyed is the per-build capture baseline.
	lastKeyed map[api.ProgramKey]*profile.DCG
	// seq is the last allocated sequence number. One counter stamps
	// both the default and every keyed stream: the root deduplicates
	// per substore against a per-pusher high-water mark, and each
	// stream sees a strictly increasing subsequence of one counter.
	seq uint64
	// pending holds captured-but-unacknowledged increments in
	// sequence order, frozen (bytes never change once stamped).
	pending []stampedDelta
	// acked accumulates every default-stream increment the root
	// acknowledged — by construction exactly the graph the root owes
	// this leaf.
	acked *profile.DCG
	// ackedKeyed is the same accounting per build.
	ackedKeyed map[api.ProgramKey]*profile.DCG
	// sentManifests records which manifests the root has acknowledged;
	// relay is at-least-once and the root registers idempotently.
	sentManifests map[api.ProgramKey]bool

	forwards uint64
	errs     uint64
}

// stampedDelta is one frozen increment. A zero key targets the root's
// default substore; a non-zero key its (program, version) substore.
type stampedDelta struct {
	seq   uint64
	key   api.ProgramKey
	delta *profile.DCG
}

// ForwarderConfig configures a leaf's upstream forwarder.
type ForwarderConfig struct {
	// ID is the leaf's upstream pusher identity. Required unless a
	// state file already records one.
	ID string
	// Upstream is the api client aimed at the root. Required.
	Upstream *api.Client
	// Source returns the leaf store's consistent snapshot. Required.
	Source func() *profile.DCG
	// KeyedSource returns per-(program, version) snapshots of the
	// leaf's keyed substores. Optional: nil forwards only the default
	// stream (the pre-versioning behaviour). Each keyed graph is
	// forwarded to the same substore at the root, so version isolation
	// survives federation end to end.
	KeyedSource func() map[api.ProgramKey]*profile.DCG
	// Manifests returns the leaf's registered manifests in
	// registration order, relayed upstream (before any keyed deltas)
	// so the root can run its own carry-forward. Optional.
	Manifests func() []*bytecode.Manifest
	// StatePath, when non-empty, persists the forwarder's write-ahead
	// state (capture baselines, sequence counter, pending increments)
	// across restarts. Without it a restarted leaf would re-forward
	// its whole restored store under fresh stamps.
	StatePath string
}

// NewForwarder returns a forwarder, restoring persisted state from
// cfg.StatePath when the file exists. A persisted identity must match
// cfg.ID (the sequence stream belongs to the identity); cfg.ID may be
// empty to adopt the persisted one.
func NewForwarder(cfg ForwarderConfig) (*Forwarder, error) {
	if cfg.Upstream == nil {
		return nil, errors.New("federation: forwarder needs an upstream client")
	}
	if cfg.Source == nil {
		return nil, errors.New("federation: forwarder needs a store source")
	}
	f := &Forwarder{
		id:            cfg.ID,
		upstream:      cfg.Upstream,
		source:        cfg.Source,
		keyedSource:   cfg.KeyedSource,
		manifests:     cfg.Manifests,
		statePath:     cfg.StatePath,
		acked:         profile.NewDCG(),
		lastKeyed:     make(map[api.ProgramKey]*profile.DCG),
		ackedKeyed:    make(map[api.ProgramKey]*profile.DCG),
		sentManifests: make(map[api.ProgramKey]bool),
	}
	if cfg.StatePath != "" {
		if err := f.restore(cfg.StatePath, cfg.ID); err != nil {
			return nil, err
		}
	}
	if f.id == "" {
		// Fresh leaf with no configured identity: mint a random one
		// (persisted on first flush, so restarts keep the stream).
		f.id = newLeafID()
	}
	return f, nil
}

// newLeafID mints a random upstream identity for a leaf that was not
// given one. Random, not host-derived: two leaves colliding in the
// root's sequence table would have increments silently dropped as
// duplicates of each other's.
func newLeafID() string {
	var b [8]byte
	crand.Read(b[:]) // rand.Read never fails on supported platforms
	return "leaf-" + hex.EncodeToString(b[:])
}

// ID returns the leaf's upstream pusher identity.
func (f *Forwarder) ID() string { return f.id }

// Flush relays any newly registered manifests, captures the weight the
// store (default and keyed substores alike) accumulated since the
// previous capture as new stamped increments, persists the state, then
// pushes every pending increment upstream in order. A flush with
// nothing new and nothing pending is a no-op. The returned response
// reports what this flush captured and what remains pending (non-zero
// only when an upstream push failed; those increments stay frozen for
// the next flush).
func (f *Forwarder) Flush() (api.FlushResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()

	resp := api.FlushResponse{}

	// Manifests go first, in registration order, so the root learns a
	// build's succession (and runs its carry-forward) before that
	// build's deltas arrive. At-least-once: a relay whose response was
	// lost re-sends, and the root registers idempotently.
	if f.manifests != nil {
		for _, man := range f.manifests() {
			key := api.ProgramKey{Program: man.Program, Version: man.Version}
			if f.sentManifests[key] {
				continue
			}
			if _, err := f.upstream.PushManifest(key, man.Encode()); err != nil {
				f.errs++
				resp.Pending = len(f.pending)
				resp.Seq = f.ackedSeqLocked()
				return resp, fmt.Errorf("federation: relay manifest %s: %w", key.String(), err)
			}
			f.sentManifests[key] = true
			if err := f.persistLocked(); err != nil {
				// The relay landed; a stale sent-set only means one
				// redundant (idempotent) re-register after a crash.
				f.errs++
			}
		}
	}

	// Capture phase: one write-ahead persist covers every stream's
	// capture, with a full rollback on persist failure so the next
	// flush re-captures the identical deltas under the same seqs.
	type rollback struct {
		key  api.ProgramKey
		prev *profile.DCG
		def  bool
	}
	var rollbacks []rollback
	capture := func(key api.ProgramKey, def bool, cur, base *profile.DCG) *profile.DCG {
		delta := cur.DeltaSince(base)
		if delta.NumEdges() == 0 {
			return base
		}
		rollbacks = append(rollbacks, rollback{key: key, prev: base, def: def})
		f.seq++
		f.pending = append(f.pending, stampedDelta{seq: f.seq, key: key, delta: delta})
		resp.Edges += delta.NumEdges()
		resp.Weight += delta.Total()
		return cur.Clone()
	}
	f.last = capture(api.ProgramKey{}, true, f.source(), f.last)
	if f.keyedSource != nil {
		keyed := f.keyedSource()
		keys := make([]api.ProgramKey, 0, len(keyed))
		for k := range keyed {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, k := range keys {
			if next := capture(k, false, keyed[k], f.lastKeyed[k]); next != nil {
				f.lastKeyed[k] = next
			}
		}
	}
	if len(rollbacks) > 0 {
		// Write-ahead: the captures must hit disk before the first push
		// attempt, or a crash after a successful push would re-capture
		// and double-send this weight under new stamps.
		if err := f.persistLocked(); err != nil {
			// Roll every capture back to its PRIOR baseline, so the next
			// flush re-captures exactly these deltas (plus anything
			// newer) under the same seqs. Resetting a baseline to nil
			// instead would re-capture the whole stream — weight the
			// root already acknowledged under earlier seqs,
			// double-counted under fresh stamps.
			f.pending = f.pending[:len(f.pending)-len(rollbacks)]
			f.seq -= uint64(len(rollbacks))
			for _, rb := range rollbacks {
				switch {
				case rb.def:
					f.last = rb.prev
				case rb.prev == nil:
					delete(f.lastKeyed, rb.key)
				default:
					f.lastKeyed[rb.key] = rb.prev
				}
			}
			f.errs++
			resp.Edges, resp.Weight = 0, 0
			return resp, fmt.Errorf("federation: persist capture: %w", err)
		}
	}

	for len(f.pending) > 0 {
		head := f.pending[0]
		if _, err := f.upstream.PushDeltaKeyed(f.id, head.seq, head.key, encodeDCG(head.delta)); err != nil {
			f.errs++
			resp.Pending = len(f.pending)
			resp.Seq = f.ackedSeqLocked()
			return resp, fmt.Errorf("federation: forward seq %d: %w", head.seq, err)
		}
		f.pending = f.pending[1:]
		if head.key.IsZero() {
			f.acked.Merge(head.delta)
		} else {
			if f.ackedKeyed[head.key] == nil {
				f.ackedKeyed[head.key] = profile.NewDCG()
			}
			f.ackedKeyed[head.key].Merge(head.delta)
		}
		f.forwards++
		if err := f.persistLocked(); err != nil {
			// The ack is applied in memory; a stale state file only
			// means a redundant (deduplicated) re-send after a crash.
			f.errs++
			resp.Pending = len(f.pending)
			resp.Seq = f.ackedSeqLocked()
			return resp, fmt.Errorf("federation: persist ack: %w", err)
		}
	}
	resp.Forwarded = true
	resp.Seq = f.seq
	return resp, nil
}

// ackedSeqLocked returns the highest acknowledged sequence: the seq
// just below the oldest pending increment, or the counter itself when
// nothing is pending.
func (f *Forwarder) ackedSeqLocked() uint64 {
	if len(f.pending) > 0 {
		return f.pending[0].seq - 1
	}
	return f.seq
}

// Acknowledged returns a clone of the cumulative default-stream graph
// the root has acknowledged from this leaf — what the conservation
// checker holds the root accountable for.
func (f *Forwarder) Acknowledged() *profile.DCG {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.acked.Clone()
}

// AcknowledgedKeyed is Acknowledged for one (program, version) stream;
// an empty graph when the root has acknowledged nothing for that build.
func (f *Forwarder) AcknowledgedKeyed(key api.ProgramKey) *profile.DCG {
	f.mu.Lock()
	defer f.mu.Unlock()
	if g := f.ackedKeyed[key]; g != nil {
		return g.Clone()
	}
	return profile.NewDCG()
}

// Pending reports how many captured increments await acknowledgement.
func (f *Forwarder) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Status returns the leaf's registration/heartbeat body.
func (f *Forwarder) Status(addr string) api.LeafStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return api.LeafStatus{
		ID:     f.id,
		Addr:   addr,
		Seq:    f.ackedSeqLocked(),
		Edges:  f.acked.NumEdges(),
		Weight: f.acked.Total(),
	}
}

// Metrics returns the forwarder's /metrics section.
func (f *Forwarder) Metrics() *api.ForwardMetrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return &api.ForwardMetrics{
		Seq:       f.seq,
		Pending:   len(f.pending),
		Forwards:  f.forwards,
		Errors:    f.errs,
		AckEdges:  f.acked.NumEdges(),
		AckWeight: f.acked.Total(),
	}
}

// forwarderState is the on-disk write-ahead state. Graph payloads are
// the canonical DCGB wire format (base64 in JSON).
type forwarderState struct {
	ID      string         `json:"id"`
	Seq     uint64         `json:"seq"`
	Last    []byte         `json:"last,omitempty"`
	Acked   []byte         `json:"acked,omitempty"`
	Pending []pendingState `json:"pending,omitempty"`
	// Keyed carries the per-build baselines and acked graphs, in
	// canonical key order; SentManifests the manifests the root has
	// already acknowledged.
	Keyed         []keyedState     `json:"keyed,omitempty"`
	SentManifests []api.ProgramKey `json:"sent_manifests,omitempty"`
}

type pendingState struct {
	Seq uint64 `json:"seq"`
	// Program/Version name the target substore; empty targets the
	// default stream.
	Program string `json:"program,omitempty"`
	Version string `json:"version,omitempty"`
	Delta   []byte `json:"delta"`
}

type keyedState struct {
	Program string `json:"program"`
	Version string `json:"version"`
	Last    []byte `json:"last,omitempty"`
	Acked   []byte `json:"acked,omitempty"`
}

func encodeDCG(g *profile.DCG) []byte {
	var buf bytes.Buffer
	g.WriteTo(&buf) // in-memory write cannot fail
	return buf.Bytes()
}

func decodeDCG(b []byte) (*profile.DCG, error) {
	if len(b) == 0 {
		return nil, nil
	}
	return profile.ReadDCG(bytes.NewReader(b))
}

// persistLocked writes the state atomically (temp file + rename into
// place), a no-op without a StatePath.
func (f *Forwarder) persistLocked() error {
	if f.statePath == "" {
		return nil
	}
	st := forwarderState{ID: f.id, Seq: f.seq}
	if f.last != nil {
		st.Last = encodeDCG(f.last)
	}
	if f.acked.NumEdges() > 0 {
		st.Acked = encodeDCG(f.acked)
	}
	for _, p := range f.pending {
		st.Pending = append(st.Pending, pendingState{
			Seq: p.seq, Program: p.key.Program, Version: p.key.Version, Delta: encodeDCG(p.delta),
		})
	}
	keys := make([]api.ProgramKey, 0, len(f.lastKeyed)+len(f.ackedKeyed))
	seen := make(map[api.ProgramKey]bool)
	for k := range f.lastKeyed {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range f.ackedKeyed {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, k := range keys {
		ks := keyedState{Program: k.Program, Version: k.Version}
		if g := f.lastKeyed[k]; g != nil {
			ks.Last = encodeDCG(g)
		}
		if g := f.ackedKeyed[k]; g != nil && g.NumEdges() > 0 {
			ks.Acked = encodeDCG(g)
		}
		st.Keyed = append(st.Keyed, ks)
	}
	for k := range f.sentManifests {
		st.SentManifests = append(st.SentManifests, k)
	}
	sort.Slice(st.SentManifests, func(i, j int) bool {
		return st.SentManifests[i].String() < st.SentManifests[j].String()
	})
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(f.statePath), ".fwd-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), f.statePath)
}

// restore loads persisted state; a missing file is a fresh start.
func (f *Forwarder) restore(path, wantID string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st forwarderState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("federation: corrupt forwarder state %s: %w", path, err)
	}
	if wantID != "" && st.ID != wantID {
		return fmt.Errorf("federation: forwarder state %s belongs to %q, not %q (sequence streams are per identity)",
			path, st.ID, wantID)
	}
	f.id = st.ID
	f.seq = st.Seq
	if f.last, err = decodeDCG(st.Last); err != nil {
		return fmt.Errorf("federation: corrupt capture baseline in %s: %w", path, err)
	}
	acked, err := decodeDCG(st.Acked)
	if err != nil {
		return fmt.Errorf("federation: corrupt acked graph in %s: %w", path, err)
	}
	if acked != nil {
		f.acked = acked
	}
	for _, p := range st.Pending {
		d, err := decodeDCG(p.Delta)
		if err != nil {
			return fmt.Errorf("federation: corrupt pending increment %d in %s: %w", p.Seq, path, err)
		}
		f.pending = append(f.pending, stampedDelta{
			seq: p.Seq, key: api.ProgramKey{Program: p.Program, Version: p.Version}, delta: d,
		})
	}
	for _, ks := range st.Keyed {
		key := api.ProgramKey{Program: ks.Program, Version: ks.Version}
		if last, err := decodeDCG(ks.Last); err != nil {
			return fmt.Errorf("federation: corrupt keyed baseline %s in %s: %w", key.String(), path, err)
		} else if last != nil {
			f.lastKeyed[key] = last
		}
		if acked, err := decodeDCG(ks.Acked); err != nil {
			return fmt.Errorf("federation: corrupt keyed acked graph %s in %s: %w", key.String(), path, err)
		} else if acked != nil {
			f.ackedKeyed[key] = acked
		}
	}
	for _, k := range st.SentManifests {
		f.sentManifests[k] = true
	}
	return nil
}
