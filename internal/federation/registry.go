package federation

import (
	"sort"
	"sync"
	"time"

	"gocbs/internal/api"
)

// MaxLeaves caps how many leaves a registry holds. Registration is an
// unauthenticated upsert served by every daemon, so without a cap a
// client minting distinct IDs could grow the map — and the memory
// behind it — without bound. Far above any real tree fan-in.
const MaxLeaves = 1024

// LeafTTL is how long a leaf entry stays fresh without a heartbeat.
// Entries older than this are evicted (lazily, when the registry is
// full and needs room, and on List) — they are dead leaves or garbage,
// not members of the tree.
const LeafTTL = 15 * time.Minute

// Registry is the root daemon's leaf ledger: which leaves exist, where
// they live, and how far their forwarded sequence streams have
// progressed. Registration is an upsert keyed by the leaf's upstream
// pusher identity — a leaf heartbeats the same body it registered
// with, so a restarted leaf that resumed its persisted sequence stream
// simply overwrites its previous entry. The ledger is advisory: the
// delta protocol, not the registry, carries correctness, so bounding
// it (MaxLeaves, LeafTTL) loses nothing but stale bookkeeping.
type Registry struct {
	mu     sync.Mutex
	leaves map[string]leafEntry
	// now is the clock, swappable by tests.
	now func() time.Time
}

// leafEntry pairs a leaf's last heartbeat body with when it arrived.
type leafEntry struct {
	status api.LeafStatus
	seen   time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{leaves: make(map[string]leafEntry), now: time.Now}
}

// Register upserts a leaf and returns the registered-leaf count. A new
// leaf arriving at a full registry first evicts entries whose last
// heartbeat is older than LeafTTL; if the registry is still full, the
// registration is refused (ok=false) — heartbeats from known leaves
// always land.
func (r *Registry) Register(st api.LeafStatus) (n int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.leaves[st.ID]; !known && len(r.leaves) >= MaxLeaves {
		r.evictStaleLocked()
		if len(r.leaves) >= MaxLeaves {
			return len(r.leaves), false
		}
	}
	r.leaves[st.ID] = leafEntry{status: st, seen: r.now()}
	return len(r.leaves), true
}

// evictStaleLocked drops every entry whose last heartbeat is older
// than LeafTTL.
func (r *Registry) evictStaleLocked() {
	cutoff := r.now().Add(-LeafTTL)
	for id, e := range r.leaves {
		if e.seen.Before(cutoff) {
			delete(r.leaves, id)
		}
	}
}

// List returns the live (heartbeat within LeafTTL) leaves sorted by
// ID, evicting the stale ones it passes over.
func (r *Registry) List() []api.LeafStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictStaleLocked()
	out := make([]api.LeafStatus, 0, len(r.leaves))
	for _, e := range r.leaves {
		out = append(out, e.status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the registered-leaf count (stale entries included until
// something evicts them).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.leaves)
}
