package federation

import (
	"sort"
	"sync"

	"gocbs/internal/api"
)

// Registry is the root daemon's leaf ledger: which leaves exist, where
// they live, and how far their forwarded sequence streams have
// progressed. Registration is an upsert keyed by the leaf's upstream
// pusher identity — a leaf heartbeats the same body it registered
// with, so a restarted leaf that resumed its persisted sequence stream
// simply overwrites its previous entry.
type Registry struct {
	mu     sync.Mutex
	leaves map[string]api.LeafStatus
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{leaves: make(map[string]api.LeafStatus)}
}

// Register upserts a leaf and returns the registered-leaf count.
func (r *Registry) Register(st api.LeafStatus) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leaves[st.ID] = st
	return len(r.leaves)
}

// List returns the registered leaves sorted by ID.
func (r *Registry) List() []api.LeafStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]api.LeafStatus, 0, len(r.leaves))
	for _, st := range r.leaves {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the registered-leaf count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.leaves)
}
