package puller

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"gocbs/internal/api"
	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/inline"
	"gocbs/internal/plan"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

func jitBench(t *testing.T, name string) (*bench.Benchmark, *bytecode.Program) {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("benchmark %q missing", name)
	}
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inline.Optimize(prog, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return b, prog
}

func exhaustiveSetupIter(t *testing.T, prog *bytecode.Program, size int64, iters int) *profile.DCG {
	t.Helper()
	e := profiler.NewExhaustive()
	m := vm.New(prog)
	m.SetProfiler(e)
	if _, err := m.Call(prog.MethodByName("$Globals.setup"), vm.IntV(size)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		if _, err := m.Call(prog.MethodByName("$Globals.iter")); err != nil {
			t.Fatal(err)
		}
	}
	return e.Graph
}

// planServer serves one fixed plan at /plan?program= with the same
// ETag semantics as cbsd, counting requests and 304s.
func planServer(t *testing.T, p *plan.Plan) (*httptest.Server, *atomic.Uint64, *atomic.Uint64) {
	t.Helper()
	var requests, notModified atomic.Uint64
	etag := "\"plan-" + strconv.FormatUint(p.Epoch, 10) + "-" + strconv.FormatUint(p.Hash, 16) + "\""
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.PathPlan {
			http.NotFound(w, r)
			return
		}
		requests.Add(1)
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Write(p.Encode())
	}))
	t.Cleanup(ts.Close)
	return ts, &requests, &notModified
}

// TestPullLoopAppliesFleetPlan: the puller fetches a plan, verifies
// it, hot-swaps it in, keeps running correctly, and ends up faster —
// while later polls are answered 304 from the client's ETag cache.
func TestPullLoopAppliesFleetPlan(t *testing.T) {
	b, pristine := jitBench(t, "compress")
	g := exhaustiveSetupIter(t, pristine.Clone(), b.Small, 3)
	p, err := plan.Compile("compress", pristine, g, plan.DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Decisions) == 0 {
		t.Fatal("compress plan is empty")
	}
	ts, requests, notModified := planServer(t, p)

	st, err := Run(pristine, Options{
		URL: ts.URL, Program: "compress", Size: b.Small,
		Rounds: 4, Every: 2, Iters: 2, Verify: true,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Killed {
		t.Error("kill switch fired on a correct plan")
	}
	if st.Swaps != 1 || st.Epoch != p.Epoch {
		t.Errorf("swaps %d epoch %d, want 1 swap of epoch %d", st.Swaps, st.Epoch, p.Epoch)
	}
	if st.Rounds != 4 || st.Polls != 2 {
		t.Errorf("rounds %d polls %d, want 4 rounds, 2 polls", st.Rounds, st.Polls)
	}
	if st.LastCycles >= st.BaseCycles {
		t.Errorf("plan-guided round not faster: %d >= %d cycles", st.LastCycles, st.BaseCycles)
	}
	if requests.Load() != 2 || notModified.Load() != 1 {
		t.Errorf("server saw %d requests / %d 304s, want 2 / 1 (second poll conditional)", requests.Load(), notModified.Load())
	}
}

// findDivergingDecision scans a benchmark's polymorphic call sites for
// a null-guard inline of a minority receiver — the paper's
// monomorphic-in-practice transform pointed at the *wrong* target,
// which executes the wrong callee body whenever the majority receiver
// shows up. It returns a single-decision plan proven (by direct
// application) to change the benchmark's output.
func findDivergingDecision(t *testing.T, program string, prog *bytecode.Program, g *profile.DCG, size int64, iters int) *plan.Plan {
	t.Helper()
	ref, _, err := RunRound(prog.Clone(), size, iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range g.Sites() {
		dist := g.SiteDistribution(site)
		if len(dist) < 2 {
			continue
		}
		// Try every minority target; most are harmless (same behavior),
		// the test needs one that is not.
		for _, tw := range dist[1:] {
			p := &plan.Plan{
				Program: program, Policy: "new-linear", Epoch: 99,
				Decisions: []plan.Decision{{Site: site, Callee: tw.Callee, Kind: plan.KindNullGuard}},
			}
			p.Hash = p.ContentHash()
			victim := prog.Clone()
			rep, err := plan.Apply(victim, p, inline.DefaultOptions())
			if err != nil || rep.InlinesApplied == 0 {
				continue
			}
			sums, _, err := RunRound(victim, size, iters)
			if err != nil || !sameSums(sums, ref) {
				t.Logf("diverging vector: site %d null-guard-inlines minority callee %d (%.1f%% of receivers)",
					site, tw.Callee, tw.Percent)
				return p
			}
		}
	}
	return nil
}

// TestPullLoopKillSwitch: a daemon serving a plan that changes program
// output must not be able to corrupt the puller. The verify round
// catches the divergence, the VM reverts to the unoptimized clone,
// pulling is disabled, and the run completes with correct output at
// baseline speed.
func TestPullLoopKillSwitch(t *testing.T) {
	// mtrt has polymorphic dispatch sites whose targets behave
	// differently, so a wrong-target null-guard inline observably
	// corrupts the checksum — the exact failure the switch exists for.
	b, pristine := jitBench(t, "mtrt")
	g := exhaustiveSetupIter(t, pristine.Clone(), b.Small, 2)
	bad := findDivergingDecision(t, "mtrt", pristine, g, b.Small, 2)
	if bad == nil {
		t.Fatal("no output-diverging inline vector found in mtrt; the kill switch test lost its test vector")
	}
	ts, _, _ := planServer(t, bad)

	st, err := Run(pristine, Options{
		URL: ts.URL, Program: "mtrt", Size: b.Small,
		Rounds: 3, Every: 1, Iters: 2, Verify: true,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Killed {
		t.Fatal("kill switch did not fire on a diverging plan")
	}
	if st.Swaps != 0 || st.Epoch != 0 {
		t.Errorf("diverging plan was swapped in: %d swaps, epoch %d", st.Swaps, st.Epoch)
	}
	if st.Rounds != 3 {
		t.Errorf("rounds %d, want 3 (workload must finish after the kill)", st.Rounds)
	}
	// Once killed, no further polls happen.
	if st.Polls != 1 {
		t.Errorf("polls %d, want 1 (pulling disabled after the kill)", st.Polls)
	}
}

// TestPullLoopSurvivesDeadDaemon: an unreachable daemon degrades the
// puller to baseline execution, never an error.
func TestPullLoopSurvivesDeadDaemon(t *testing.T) {
	b, pristine := jitBench(t, "compress")
	st, err := Run(pristine, Options{
		URL: "http://127.0.0.1:1", Program: "compress", Size: b.Small,
		Rounds: 2, Every: 1, Iters: 1, Verify: true,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2 || st.Swaps != 0 || st.Killed {
		t.Errorf("dead daemon: %+v", st)
	}
}

// TestPullLoopRefusesWrongVersionPlan is the negative version test: a
// daemon (or a cache in front of one) keeps serving a plan compiled
// for a different build of the program. The puller must refuse every
// such plan whole — zero swaps, zero applied epochs — count the
// refusals, and keep the workload running unoptimized.
func TestPullLoopRefusesWrongVersionPlan(t *testing.T) {
	b, pristine := jitBench(t, "compress")
	g := exhaustiveSetupIter(t, pristine.Clone(), b.Small, 3)
	p, err := plan.Compile("compress", pristine, g, plan.DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != pristine.Version() {
		t.Fatalf("compiled plan stamped %q, want %q", p.Version, pristine.Version())
	}
	ts, requests, _ := planServer(t, p)

	// This VM runs an upgraded build: one extra unused constant, same
	// behaviour, different content-addressed version. The served plan's
	// decisions would even apply cleanly — which is exactly why the
	// refusal must be identity-based, not best-effort.
	upgraded := pristine.Clone()
	m := upgraded.MethodByName("$Globals.setup")
	m.Consts = append(m.Consts, 0x5F55504752414445)
	if upgraded.Version() == pristine.Version() {
		t.Fatal("upgrade did not change the version")
	}

	st, err := Run(upgraded, Options{
		URL: ts.URL, Program: "compress", Size: b.Small,
		Rounds: 4, Every: 1, Iters: 1, Verify: true,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Swaps != 0 || st.Epoch != 0 {
		t.Errorf("puller APPLIED a wrong-version plan: %d swaps, epoch %d", st.Swaps, st.Epoch)
	}
	if st.VersionRejects != st.Polls || st.Polls == 0 {
		t.Errorf("VersionRejects = %d over %d polls, want every poll refused", st.VersionRejects, st.Polls)
	}
	if st.Killed {
		t.Error("kill switch fired — refused plans must never reach execution")
	}
	if st.Rounds != 4 {
		t.Errorf("workload ran %d rounds, want 4 (refusals must not stop the VM)", st.Rounds)
	}
	if requests.Load() == 0 {
		t.Error("puller never reached the server")
	}
}
