// Package puller is the plan-pulling execution mode of cbsvm as a
// library — the exploit half of the fleet loop, extracted so the fleet
// simulator (internal/fleetsim) can run many pulling VMs in-process
// with an injected, fault-wrapped plan client.
package puller

import (
	"errors"
	"fmt"

	"gocbs/internal/bytecode"
	"gocbs/internal/inline"
	"gocbs/internal/plan"
	"gocbs/internal/vm"
)

// Options configures the plan-pulling execution mode (-pull-plan):
// the exploit half of the fleet loop, where this VM runs its benchmark
// repeatedly and periodically asks a cbsd daemon for the inlining plan
// compiled from the whole fleet's aggregated profile.
type Options struct {
	URL     string // cbsd base URL
	Program string // benchmark name, also the plan key
	Size    int64  // setup argument

	Rounds int // total top-level rounds to run
	Every  int // poll the daemon every N rounds (>=1)
	Iters  int // $Globals.iter calls per round
	Verify bool

	Opts inline.Options
	Logf func(format string, args ...any)

	// Client, when non-nil, replaces the plan client Run would build
	// from URL — the seam the fleet simulator uses to route polls
	// through a fault-injecting transport.
	Client *plan.Client
	// Observe, when non-nil, is called once per successful poll with
	// the plan the daemon served (new or cached) and once more, with
	// swapped=true, when a plan passes verification and is hot-swapped
	// in. The fleet simulator's invariant checkers hang off this hook.
	Observe func(p *plan.Plan, swapped bool)
}

// Stats summarizes a pull-mode run.
type Stats struct {
	Rounds int
	Polls  int
	Swaps  int
	// Epoch is the plan epoch the VM ended on (0 = never applied one).
	Epoch uint64
	// VersionRejects counts plans refused outright because their
	// program version did not match this VM's running build — the
	// loud replacement for silently part-applying another build's
	// decisions.
	VersionRejects int
	// StaleDecisions is the cumulative count of plan decisions that
	// found no matching call site when a plan was applied. Non-zero
	// only for legacy version-less plans (a versioned plan either
	// matches this build or is refused whole).
	StaleDecisions int
	// Killed reports the divergence kill switch fired: a transformed
	// program produced different output, the VM reverted to an
	// unoptimized clone, and pulling was disabled for the rest of the
	// run.
	Killed bool
	// BaseCycles / LastCycles are the steady-state cycles of the first
	// (always unoptimized) and last round.
	BaseCycles uint64
	LastCycles uint64
}

// runRound executes one top-level round — setup(size) then iters
// iterations on a fresh VM — and returns the per-iteration checksums
// and the cycles spent iterating (setup excluded, steady state only).
func RunRound(prog *bytecode.Program, size int64, iters int) ([]int64, uint64, error) {
	m := vm.New(prog)
	setup := prog.MethodByName("$Globals.setup")
	iter := prog.MethodByName("$Globals.iter")
	if setup == nil || iter == nil {
		return nil, 0, fmt.Errorf("program does not follow the setup/iter benchmark protocol")
	}
	if _, err := m.Call(setup, vm.IntV(size)); err != nil {
		return nil, 0, err
	}
	start := m.Cycles
	sums := make([]int64, iters)
	for i := range sums {
		v, err := m.Call(iter)
		if err != nil {
			return nil, 0, err
		}
		sums[i] = v.I
	}
	return sums, m.Cycles - start, nil
}

func sameSums(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runPullLoop is the pulling VM's main loop. pristine must be the
// JIT-only compile of the benchmark — the same preparation every VM in
// the fleet (and the daemon's plan compiler) uses, so the plan's
// call-site IDs line up.
//
// The loop runs Rounds top-level rounds of the benchmark. Every Every
// rounds it polls the daemon with a conditional GET; when a new plan
// epoch arrives, the plan is applied to a fresh clone of the pristine
// program and — with Verify — the candidate first replays one round
// and must reproduce the unoptimized reference checksums exactly.
// Only then is it hot-swapped in as the active program for subsequent
// rounds. Heap state never crosses a swap: objects hold vtable
// pointers into the program that allocated them, so swaps happen only
// at round boundaries where no benchmark state is live.
//
// The kill switch: if a candidate (or the active program, re-checked
// every round) ever produces checksums that differ from the pristine
// reference, the VM reverts to an unoptimized clone and stops pulling
// for the rest of the run. A bad centrally-compiled plan degrades this
// VM to baseline speed; it cannot corrupt its output.
func Run(pristine *bytecode.Program, o Options) (Stats, error) {
	if o.Rounds < 1 {
		o.Rounds = 1
	}
	if o.Every < 1 {
		o.Every = 1
	}
	if o.Iters < 1 {
		o.Iters = 1
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// A zero Options would cap every inline budget at zero and make the
	// whole loop a silent no-op.
	if o.Opts.MaxDepth == 0 {
		o.Opts = inline.DefaultOptions()
	}

	// Reference round on the unoptimized program: the ground truth
	// every transformed round must reproduce, and the baseline cycle
	// count speedups are judged against.
	ref, baseCycles, err := RunRound(pristine.Clone(), o.Size, o.Iters)
	if err != nil {
		return Stats{}, fmt.Errorf("reference round: %w", err)
	}
	st := Stats{BaseCycles: baseCycles, LastCycles: baseCycles}

	client := o.Client
	if client == nil {
		client = plan.NewClient(o.URL)
	}
	observe := o.Observe
	if observe == nil {
		observe = func(*plan.Plan, bool) {}
	}
	// The version this VM demands of every plan: the content-addressed
	// identity of its own prepared program. The daemon scopes its plan
	// to this exact build, and anything else that slips through —
	// a cached body, a misbehaving relay — is refused below.
	version := pristine.Version()
	active := pristine.Clone()
	for round := 0; round < o.Rounds; round++ {
		if !st.Killed && round%o.Every == 0 {
			st.Polls++
			p, changed, err := client.FetchVersion(o.Program, version)
			if err == nil {
				observe(p, false)
			}
			switch {
			case errors.Is(err, plan.ErrVersionMismatch):
				// The client refused a plan at the wire because it was
				// compiled for a different build — a misrouting relay or a
				// stale cache between this VM and the daemon. Counted
				// separately from transient failures so a fleet serving the
				// wrong build is visible, not just slow.
				st.VersionRejects++
				logf("pull: REFUSED plan: %v (this VM runs %s@%s)", err, o.Program, version)
			case err != nil:
				// Transient daemon trouble must not stop the workload.
				logf("pull: poll %d failed (running on): %v", st.Polls, err)
			case changed:
				if p.Version != "" && p.Version != version {
					// A plan for a different build of this program: its
					// decisions name that build's method and site IDs.
					// Refuse it whole — applying the subset that happens
					// to line up is exactly the silent misapplication
					// this check exists to end. (Version-less plans from
					// a pre-versioning daemon still apply, guarded by
					// the stale-skip accounting and the kill switch.)
					st.VersionRejects++
					logf("pull: REFUSED plan epoch %d: compiled for %s@%s, this VM runs %s@%s",
						p.Epoch, p.Program, p.Version, o.Program, version)
					break
				}
				candidate := pristine.Clone()
				rep, err := plan.Apply(candidate, p, o.Opts)
				if err != nil {
					logf("pull: plan epoch %d does not apply (keeping current code): %v", p.Epoch, err)
					break
				}
				if rep.SkippedStale > 0 {
					// One line per plan, not per decision: enough to make
					// a mismatched fleet visible without log spam.
					st.StaleDecisions += rep.SkippedStale
					logf("pull: plan epoch %d: %d of %d decisions skipped as stale for this build",
						p.Epoch, rep.SkippedStale, len(p.Decisions))
				}
				if o.Verify {
					sums, _, err := RunRound(candidate, o.Size, o.Iters)
					if err != nil || !sameSums(sums, ref) {
						st.Killed = true
						active = pristine.Clone()
						logf("pull: KILL SWITCH — plan epoch %d diverges from unoptimized output (err=%v); reverted to baseline, pulling disabled", p.Epoch, err)
						break
					}
				}
				active = candidate
				st.Swaps++
				st.Epoch = p.Epoch
				observe(p, true)
				logf("pull: swapped in plan epoch %d (%d decisions, %d inlines)", p.Epoch, len(p.Decisions), rep.InlinesApplied)
			}
		}

		sums, cycles, err := RunRound(active, o.Size, o.Iters)
		if err != nil {
			return st, fmt.Errorf("round %d: %w", round, err)
		}
		if !sameSums(sums, ref) {
			// Belt and braces: divergence surfacing only in the live
			// round (e.g. -pull-verify off) trips the same kill switch.
			st.Killed = true
			active = pristine.Clone()
			logf("pull: KILL SWITCH — live round %d diverged; reverted to baseline, pulling disabled", round)
		}
		st.LastCycles = cycles
		st.Rounds++
	}
	return st, nil
}
