package mincover

import "gocbs/internal/bytecode"

// Per-pc CFG classes. pcAnchor marks instructions in blocks that
// execute exactly once per completed invocation of the method: the
// block dominates the (virtual) exit node and is not part of a cycle.
// pcDead marks statically unreachable instructions.
const (
	pcPlain = iota
	pcAnchor
	pcDead
)

// classifyPCs partitions a method body into basic blocks and assigns
// each pc a class. allowAnchors=false demotes every anchor to plain
// (used when the program contains OpHalt, which can abandon an
// invocation mid-body and so invalidates exactly-once accounting).
//
// The analysis is deliberately conservative in every ambiguous case —
// a branch target out of range, code falling off the end of the body —
// because such paths trap at runtime and abort the whole run, and
// mincover only promises exactness for runs that complete. Extra exit
// edges can only demote anchors to plain, never promote.
func classifyPCs(code []bytecode.Instr, allowAnchors bool) []int {
	n := len(code)
	cls := make([]int, n)
	if n == 0 {
		return cls
	}

	// Leaders: entry, branch targets, and instruction after any
	// control transfer.
	leader := make([]bool, n)
	leader[0] = true
	for pc, ins := range code {
		switch {
		case ins.Op.IsBranch():
			if t := int(ins.A); t >= 0 && t < n {
				leader[t] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		case ins.Op.IsReturn() || ins.Op == bytecode.OpHalt:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	blockOf := make([]int, n)
	nb := -1
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			nb++
		}
		blockOf[pc] = nb
	}
	nb++
	end := make([]int, nb) // last pc of each block
	for pc := 0; pc < n; pc++ {
		end[blockOf[pc]] = pc
	}

	// Successors; block nb is the virtual exit node.
	exit := nb
	succ := make([][]int, nb+1)
	for b := 0; b < nb; b++ {
		last := end[b]
		ins := code[last]
		add := func(s int) { succ[b] = append(succ[b], s) }
		target := func() int {
			if t := int(ins.A); t >= 0 && t < n {
				return blockOf[t]
			}
			return exit // invalid target traps; treated as an exit path
		}
		switch {
		case ins.Op == bytecode.OpJump:
			add(target())
		case ins.Op.IsCondBranch():
			add(target())
			if last+1 < n {
				add(blockOf[last+1])
			} else {
				add(exit)
			}
		case ins.Op.IsReturn() || ins.Op == bytecode.OpHalt:
			add(exit)
		default:
			if last+1 < n {
				add(blockOf[last+1])
			} else {
				add(exit) // falls off the end: traps, an exit path
			}
		}
	}

	// Reachability from entry.
	reach := make([]bool, nb+1)
	var dfs func(int)
	dfs = func(b int) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range succ[b] {
			dfs(s)
		}
	}
	dfs(0)

	for pc := 0; pc < n; pc++ {
		if !reach[blockOf[pc]] {
			cls[pc] = pcDead
		}
	}
	if !allowAnchors || !reach[exit] {
		// No completed invocations are possible (or accounting is
		// unsound): no anchors, only dead/plain.
		return cls
	}

	// Iterative dominators over the reachable subgraph, exit included.
	pred := make([][]int, nb+1)
	for b := 0; b <= nb; b++ {
		if !reach[b] {
			continue
		}
		for _, s := range succ[b] {
			pred[s] = append(pred[s], b)
		}
	}
	words := (nb + 1 + 63) / 64
	full := make([]uint64, words)
	for b := 0; b <= nb; b++ {
		full[b/64] |= 1 << (b % 64)
	}
	dom := make([][]uint64, nb+1)
	for b := 0; b <= nb; b++ {
		dom[b] = append([]uint64(nil), full...)
	}
	dom[0] = make([]uint64, words)
	dom[0][0] |= 1
	for changed := true; changed; {
		changed = false
		for b := 1; b <= nb; b++ {
			if !reach[b] {
				continue
			}
			next := append([]uint64(nil), full...)
			for _, p := range pred[b] {
				for w := range next {
					next[w] &= dom[p][w]
				}
			}
			next[b/64] |= 1 << (b % 64)
			for w := range next {
				if next[w] != dom[b][w] {
					dom[b] = next
					changed = true
					break
				}
			}
		}
	}
	domExit := func(b int) bool { return dom[exit][b/64]&(1<<(b%64)) != 0 }

	// inCycle[b]: b reaches itself through at least one edge.
	inCycle := make([]bool, nb)
	for b := 0; b < nb; b++ {
		if !reach[b] {
			continue
		}
		seen := make([]bool, nb+1)
		stack := append([]int(nil), succ[b]...)
		for len(stack) > 0 && !inCycle[b] {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s == b {
				inCycle[b] = true
				break
			}
			if s > nb || seen[s] || !reach[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, succ[s]...)
		}
	}

	for pc := 0; pc < n; pc++ {
		b := blockOf[pc]
		if reach[b] && domExit(b) && !inCycle[b] {
			cls[pc] = pcAnchor
		}
	}
	return cls
}
