package mincover

import (
	"fmt"

	"gocbs/internal/bytecode"
)

// The conservation system relates three families of unknowns over the
// static graph — edge frequencies f(e), method entry counts ent(m)
// (dynamic calls in plus harness invocations), and point sitecounts
// sc(p) = Σ f(e) over p's edges — through four derivation rules:
//
//	R1  all in-edges of m known            → ent(m) = harness(m) + Σ in
//	R1b a sitecount of an anchor point of
//	    m known                            → ent(m) = sc(p) / mult(p)
//	R2  ent(m) and all but one in-edge
//	    known                              → the last in-edge
//	R3  ent(m) known, p an anchor point    → sc(p) = mult(p) × ent(m)
//	R3b all edges of p known               → sc(p) = Σ
//	R4  sc(p) and all but one edge of p
//	    known                              → the last edge
//
// Rule applicability depends only on *which* quantities are known,
// never on their values, so one closure serves two purposes: run
// symbolically (all measurements zero) it decides whether a candidate
// probe set covers the graph, and run on real probe counts it recovers
// the full frequency vector. A probe set accepted symbolically is
// therefore guaranteed to resolve at runtime.

// solveState is the solver's workspace; values are only meaningful
// where the corresponding known flag is set.
type solveState struct {
	edgeVal   []float64
	edgeKnown []bool
	entVal    []float64
	entKnown  []bool
	scVal     map[Point]float64
	scKnown   map[Point]bool
}

// solve runs the derivation rules to fixpoint. Probed points seed the
// system with their measured per-edge counts; knownZero points seed
// zeros. Deterministic: iteration follows the graph's canonical order.
func (g *Graph) solve(probed map[Point]bool, edgeMeas func(StaticEdge) float64, harness func(int) float64) *solveState {
	s := &solveState{
		edgeVal:   make([]float64, len(g.Edges)),
		edgeKnown: make([]bool, len(g.Edges)),
		entVal:    make([]float64, g.NumMethods),
		entKnown:  make([]bool, g.NumMethods),
		scVal:     make(map[Point]float64),
		scKnown:   make(map[Point]bool),
	}
	for _, p := range g.Points {
		pi := g.info[p]
		switch {
		case probed[p]:
			sum := 0.0
			for _, ei := range pi.edges {
				v := edgeMeas(g.Edges[ei])
				s.edgeVal[ei] = v
				s.edgeKnown[ei] = true
				sum += v
			}
			s.scVal[p] = sum
			s.scKnown[p] = true
		case pi.knownZero():
			for _, ei := range pi.edges {
				s.edgeKnown[ei] = true
			}
			s.scVal[p] = 0
			s.scKnown[p] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for m := 0; m < g.NumMethods; m++ {
			if !s.entKnown[m] {
				all, sum := true, 0.0
				for _, ei := range g.in[m] {
					if !s.edgeKnown[ei] {
						all = false
						break
					}
					sum += s.edgeVal[ei]
				}
				if all { // R1
					s.entVal[m] = harness(m) + sum
					s.entKnown[m] = true
					changed = true
				} else {
					for _, p := range g.anchors[m] { // R1b
						if s.scKnown[p] {
							mult, _ := g.info[p].anchorMult()
							s.entVal[m] = s.scVal[p] / float64(mult)
							s.entKnown[m] = true
							changed = true
							break
						}
					}
				}
			}
			if s.entKnown[m] {
				unk, cnt, sum := -1, 0, 0.0
				for _, ei := range g.in[m] {
					if s.edgeKnown[ei] {
						sum += s.edgeVal[ei]
					} else {
						unk, cnt = ei, cnt+1
					}
				}
				if cnt == 1 { // R2
					s.edgeVal[unk] = s.entVal[m] - harness(m) - sum
					s.edgeKnown[unk] = true
					changed = true
				}
			}
		}
		for _, p := range g.Points {
			pi := g.info[p]
			if !s.scKnown[p] {
				if mult, ok := pi.anchorMult(); ok && s.entKnown[p.Method] { // R3
					s.scVal[p] = float64(mult) * s.entVal[p.Method]
					s.scKnown[p] = true
					changed = true
				} else {
					all, sum := true, 0.0
					for _, ei := range pi.edges {
						if !s.edgeKnown[ei] {
							all = false
							break
						}
						sum += s.edgeVal[ei]
					}
					if all { // R3b
						s.scVal[p] = sum
						s.scKnown[p] = true
						changed = true
					}
				}
			}
			if s.scKnown[p] {
				unk, cnt, sum := -1, 0, 0.0
				for _, ei := range pi.edges {
					if s.edgeKnown[ei] {
						sum += s.edgeVal[ei]
					} else {
						unk, cnt = ei, cnt+1
					}
				}
				if cnt == 1 { // R4
					s.edgeVal[unk] = s.scVal[p] - sum
					s.edgeKnown[unk] = true
					changed = true
				}
			}
		}
	}
	return s
}

// covered reports whether the probe set determines every static edge,
// by running the closure symbolically.
func (g *Graph) covered(probed map[Point]bool) bool {
	s := g.solve(probed, func(StaticEdge) float64 { return 0 }, func(int) float64 { return 0 })
	for _, k := range s.edgeKnown {
		if !k {
			return false
		}
	}
	return true
}

// Cover is a chosen probe set over a static graph: everything needed
// to instrument a run and recover the full frequency vector afterwards.
type Cover struct {
	Graph  *Graph
	Probed map[Point]bool
}

// Compute extracts prog's static graph and minimizes a probe set over
// it. Purely static: nothing here touches the VM or charges cycles.
func Compute(prog *bytecode.Program) *Cover {
	return Extract(prog).MinCover()
}

// MinCover picks an irredundant probe set by reverse deletion: start
// from every live point probed, then drop each point (in canonical
// order) whose removal leaves the graph covered. The result is minimal
// under deletion — no probe in it is redundant — which is the
// guarantee the MCI paper's greedy matches; the globally optimum set
// is NP-hard and not attempted (see DESIGN.md). Deterministic for a
// given program.
func (g *Graph) MinCover() *Cover {
	probed := make(map[Point]bool)
	for _, p := range g.Points {
		pi := g.info[p]
		if !pi.knownZero() && len(pi.edges) > 0 {
			probed[p] = true
		}
	}
	for _, p := range g.Points {
		if !probed[p] {
			continue
		}
		// Closure points stay probed unconditionally: their static
		// target set (every OpMakeClosure body in the program) is too
		// coarse to trust conservation-only derivation through it.
		if g.info[p].closure {
			continue
		}
		delete(probed, p)
		if !g.covered(probed) {
			probed[p] = true
		}
	}
	return &Cover{Graph: g, Probed: probed}
}

// Recover solves the conservation system from measured probe counts
// (edgeMeas per probed static edge; unprobed edges are never asked)
// and per-method harness invocation counts, returning the recovered
// frequency of every edge, aligned with Graph.Edges. It errors only if
// the probe set fails to cover the graph — impossible for covers built
// by MinCover, since the symbolic and numeric closures fire the same
// rules.
func (c *Cover) Recover(edgeMeas func(StaticEdge) float64, harness func(int) float64) ([]float64, error) {
	s := c.Graph.solve(c.Probed, edgeMeas, harness)
	for i, k := range s.edgeKnown {
		if !k {
			return nil, fmt.Errorf("mincover: %+v not derivable — probe set does not cover the graph", c.Graph.Edges[i])
		}
	}
	return s.edgeVal, nil
}

// NumPoints counts the static call points of the graph — what
// exhaustive instrumentation pays for.
func (c *Cover) NumPoints() int { return len(c.Graph.Points) }

// NumProbes counts the points this cover actually instruments.
func (c *Cover) NumProbes() int { return len(c.Probed) }

// ProbeRatio is NumProbes/NumPoints — the fraction of call points that
// carry a probe (0 for an empty graph).
func (c *Cover) ProbeRatio() float64 {
	if len(c.Graph.Points) == 0 {
		return 0
	}
	return float64(len(c.Probed)) / float64(len(c.Graph.Points))
}
