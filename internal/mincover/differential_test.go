package mincover

import (
	"bytes"
	"testing"

	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/inline"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

// diffRun executes prog's entry on size under p (nil for bare) and
// returns the VM for inspection.
func diffRun(t *testing.T, prog *bytecode.Program, size int64, p vm.Profiler) *vm.VM {
	t.Helper()
	m := vm.New(prog)
	m.MaxSteps = 4_000_000_000
	if p != nil {
		m.SetProfiler(p)
	}
	if _, err := m.Run(size); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// dcgBytes serializes a DCG canonically, so byte equality is graph
// equality.
func dcgBytes(t *testing.T, g *profile.DCG) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// exhaustiveRun collects the ground-truth DCG of one deterministic run.
func exhaustiveRun(t *testing.T, prog *bytecode.Program, size int64) *profile.DCG {
	t.Helper()
	ex := profiler.NewExhaustive()
	diffRun(t, prog, size, ex)
	return ex.Graph
}

// checkExact runs prog twice — exhaustive and mincover — and requires
// the recovered DCG byte-identical to the exhaustive one, zero
// unexpected edges, and (when wantStrict) strictly fewer probes than
// static call points. Returns the mincover profiler for extra asserts.
func checkExact(t *testing.T, prog *bytecode.Program, size int64, wantStrict bool) *Profiler {
	t.Helper()
	ex := profiler.NewExhaustive()
	diffRun(t, prog, size, ex)

	mc := New(prog)
	diffRun(t, prog, size, mc)
	if err := mc.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if mc.Unexpected != 0 {
		t.Errorf("observed %d dynamic edges outside the static graph", mc.Unexpected)
	}
	if !bytes.Equal(dcgBytes(t, mc.Graph), dcgBytes(t, ex.Graph)) {
		t.Errorf("recovered DCG differs from exhaustive: %d edges / %.0f total vs %d edges / %.0f total",
			mc.Graph.NumEdges(), mc.Graph.Total(), ex.Graph.NumEdges(), ex.Graph.Total())
	}
	c := mc.Cover
	if wantStrict && c.NumProbes() >= c.NumPoints() {
		t.Errorf("probes %d not strictly fewer than the %d static call points", c.NumProbes(), c.NumPoints())
	}
	return mc
}

// TestMincoverSuiteExactAndCheaper is the acceptance gate: on every
// benchmark of the suite, the recovered DCG is byte-identical to
// exhaustive's and the probe set is strictly smaller than the static
// call-point set — both on the plain program and after trivial
// inlining (which duplicates site IDs across methods).
func TestMincoverSuiteExactAndCheaper(t *testing.T) {
	suite := bench.All()
	if len(suite) != 15 {
		t.Fatalf("suite has %d benchmarks, want 15", len(suite))
	}
	for _, b := range suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			mc := checkExact(t, prog, b.Small, true)
			c := mc.Cover
			t.Logf("plain: %d/%d points probed (ratio %.2f), %d static edges",
				c.NumProbes(), c.NumPoints(), c.ProbeRatio(), len(c.Graph.Edges))

			inlined, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inline.Optimize(inlined, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
				t.Fatal(err)
			}
			ic := checkExact(t, inlined, b.Small, true).Cover
			t.Logf("inlined: %d/%d points probed (ratio %.2f)",
				ic.NumProbes(), ic.NumPoints(), ic.ProbeRatio())
		})
	}
}

// TestComputeDeterministic: the probe set is a pure function of the
// program.
func TestComputeDeterministic(t *testing.T) {
	b := bench.All()[0]
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, c := Compute(prog), Compute(prog)
	if len(a.Probed) != len(c.Probed) {
		t.Fatalf("probe set sizes differ: %d vs %d", len(a.Probed), len(c.Probed))
	}
	for p := range a.Probed {
		if !c.Probed[p] {
			t.Fatalf("probe sets differ at %+v", p)
		}
	}
	if len(a.Graph.Edges) != len(c.Graph.Edges) {
		t.Fatalf("edge counts differ")
	}
	for i := range a.Graph.Edges {
		if a.Graph.Edges[i] != c.Graph.Edges[i] {
			t.Fatalf("edge order differs at %d", i)
		}
	}
}
