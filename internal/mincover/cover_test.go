package mincover

import (
	"testing"

	"gocbs/internal/mj"
)

// TestStraightLineNeedsNoProbes: a chain of unconditional calls hangs
// entirely off anchor blocks, so every edge derives from the free
// harness entry count of main — zero probes.
func TestStraightLineNeedsNoProbes(t *testing.T) {
	src := `
int helper(int x) { return x + 1; }
int mid(int x) { return helper(x) + helper(x); }
int main(int n) { return mid(n) + helper(n); }
`
	prog, err := mj.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	c := Compute(prog)
	if c.NumProbes() != 0 {
		t.Errorf("straight-line program wants 0 probes, got %d of %d points: %v",
			c.NumProbes(), c.NumPoints(), c.Probed)
	}
	mc := FromCover(c)
	diffRun(t, prog, 5, mc)
	if err := mc.Finalize(); err != nil {
		t.Fatal(err)
	}
	exp, err := mj.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want := exhaustiveRun(t, exp, 5)
	if got, w := mc.Graph.Total(), want.Total(); got != w {
		t.Errorf("recovered total %v, want %v", got, w)
	}
	if mc.Graph.NumEdges() != want.NumEdges() {
		t.Errorf("recovered %d edges, want %d", mc.Graph.NumEdges(), want.NumEdges())
	}
}

// TestConditionalCallNeedsProbe: calls under data-dependent branches
// in a loop cannot all be derived — the cover keeps a probe, and
// recovery stays exact anyway.
func TestConditionalCallNeedsProbe(t *testing.T) {
	src := `
int a(int x) { return x + 1; }
int b(int x) { return x - 1; }
int main(int n) {
	int r = 0;
	for (int i = 0; i < n; i = i + 1) {
		if (r < 10) { r = r + a(i); } else { r = r + b(i); }
	}
	return r;
}
`
	prog, err := mj.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mc := checkExact(t, prog, 25, false)
	if mc.Cover.NumProbes() == 0 {
		t.Error("data-dependent branchy calls cannot be probe-free")
	}
}

// TestRecursionStaysExact: recursion makes entry counts circular, so
// recursive sites stay probed, but recovery must still be exact.
func TestRecursionStaysExact(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main(int n) { return fib(n); }
`
	prog, err := mj.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, prog, 12, false)
}

// TestVirtualDispatchConservative: a virtual site gets one static edge
// per implementation visible from the instantiated classes; recovery
// resolves the never-taken ones to zero and stays exact.
func TestVirtualDispatchConservative(t *testing.T) {
	src := `
class Shape {
	int area(int s) { return 0; }
}
class Square extends Shape {
	int area(int s) { return s * s; }
}
class Circle extends Shape {
	int area(int s) { return 3 * s * s; }
}
int main(int n) {
	Shape sq = new Square();
	Shape ci = new Circle();
	int r = 0;
	for (int i = 0; i < n; i = i + 1) {
		if (i - i / 2 * 2 == 0) { r = r + sq.area(i); } else { r = r + ci.area(i); }
	}
	return r;
}
`
	prog, err := mj.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := Extract(prog)
	// main's two virtual sites each fan out over the implementations
	// reachable from the instantiated classes {Square, Circle}.
	virtEdges := 0
	for _, e := range g.Edges {
		if owner := prog.SiteOwner[e.Site]; owner != nil && owner.Name == "$Globals.main" {
			virtEdges++
		}
	}
	if virtEdges < 4 {
		t.Errorf("expected >= 4 static edges from main's virtual sites, got %d", virtEdges)
	}
	checkExact(t, prog, 9, false)
}
