package mincover

import (
	"fmt"

	"gocbs/internal/bytecode"
	"gocbs/internal/profile"
	"gocbs/internal/vm"
)

// Profiler is the minimum-coverage profile source: a vm.Profiler that
// pays instrumentation cost only at the cover's probed points and
// reconstructs the complete DCG at Finalize time by solving the
// conservation system. The recovered graph lands in the same live
// *profile.DCG the probes increment, so delta pushers attached to
// Graph see probed weight during the run and the derived remainder
// after Finalize — everything downstream (DCGB-v1 encoding, dcgstore,
// plans, federation) works unchanged.
type Profiler struct {
	Cover *Cover
	Graph *profile.DCG

	// Unexpected counts dynamic edges observed at probed points that
	// the static graph does not contain. Always zero unless the
	// extractor's soundness argument is violated; such edges are still
	// recorded so no weight is silently dropped.
	Unexpected uint64

	// harness[m] counts invocations of method m pushed directly by the
	// host via vm.Call (frames with no call site), recognized by
	// TopCallEdge reporting no edge. These carry no modeled cost: the
	// harness knows its own invocation counts without any VM-side
	// instrumentation, just as the zero-cost Exhaustive baseline knows
	// its samples.
	harness []float64

	edgeSet   map[profile.Edge]bool
	finalized bool
	finalErr  error
}

var (
	_ vm.Profiler      = (*Profiler)(nil)
	_ vm.CallListener  = (*Profiler)(nil)
	_ vm.EntryListener = (*Profiler)(nil)
)

// New computes a minimal cover for prog and wraps it in a ready-to-run
// profiler. Call it on the program the VM will actually execute (after
// any inlining), so the static graph matches the executed code.
func New(prog *bytecode.Program) *Profiler {
	return FromCover(Compute(prog))
}

// FromCover builds a profiler over a precomputed cover, letting many
// VMs running clones of one program share the static analysis.
func FromCover(c *Cover) *Profiler {
	p := &Profiler{
		Cover:   c,
		Graph:   profile.NewDCG(),
		harness: make([]float64, c.Graph.NumMethods),
		edgeSet: make(map[profile.Edge]bool, len(c.Graph.Edges)),
	}
	for _, e := range c.Graph.Edges {
		p.edgeSet[profile.Edge{Caller: e.Caller, Site: e.Site, Callee: e.Callee}] = true
	}
	return p
}

// Name implements vm.Profiler.
func (p *Profiler) Name() string { return "mincover" }

// OnCall implements vm.CallListener: unprobed points return
// immediately and free; probed points pay the same per-call
// instrumentation cost the exhaustive-instrumented profiler models,
// and record the edge.
func (p *Profiler) OnCall(m *vm.VM, caller *bytecode.Method, site int, callee *bytecode.Method) {
	if !p.Cover.Probed[Point{Method: caller.ID, Site: site}] {
		return
	}
	m.ChargeProfiling(m.Cost.InstrumentationCost)
	e := profile.Edge{Caller: caller.ID, Site: site, Callee: callee.ID}
	if !p.edgeSet[e] {
		p.Unexpected++
	}
	p.Graph.AddSample(e, 1)
}

// OnEntry implements vm.EntryListener, counting harness-pushed frames
// (vm.Call invocations) per method. Entries that arrived through a
// call instruction are already covered by the edge system and are
// ignored here.
func (p *Profiler) OnEntry(m *vm.VM, meth *bytecode.Method) {
	if _, _, _, ok := m.TopCallEdge(); ok {
		return
	}
	if meth.ID >= 0 && meth.ID < len(p.harness) {
		p.harness[meth.ID]++
	}
}

// Finalize solves the conservation system from the probe counts
// accumulated in Graph plus the harness invocation counts, and injects
// each edge's derived remainder into Graph — after which Graph is the
// complete recovered DCG, exactly equal to what exhaustive profiling
// would have collected on the same deterministic run. Idempotent;
// returns the first error on repeat calls. Call it after the run
// completes and before the final flush of any attached pusher.
func (p *Profiler) Finalize() error {
	if p.finalized {
		return p.finalErr
	}
	p.finalized = true
	vals, err := p.Cover.Recover(
		func(e StaticEdge) float64 {
			return p.Graph.Weight(profile.Edge{Caller: e.Caller, Site: e.Site, Callee: e.Callee})
		},
		func(m int) float64 { return p.harness[m] },
	)
	if err != nil {
		p.finalErr = err
		return err
	}
	for i, e := range p.Cover.Graph.Edges {
		pe := profile.Edge{Caller: e.Caller, Site: e.Site, Callee: e.Callee}
		d := vals[i] - p.Graph.Weight(pe)
		if d > 0 {
			p.Graph.AddSample(pe, d)
		} else if d < -1e-6 {
			p.finalErr = fmt.Errorf("mincover: recovered count for %v is %g below its measured probe count", pe, -d)
			return p.finalErr
		}
	}
	return nil
}
