// Package mincover implements minimum-coverage call instrumentation
// after Chen/Hoag/Mestre/Pupyrev ("Minimum Coverage Instrumentation"):
// instead of counting every dynamic call (exhaustive) or sampling a
// biased subset (CBS), it places probes on a small subset of call
// points chosen so that flow conservation on the *static* call graph
// recovers every edge frequency exactly from the probe counts alone.
//
// The pipeline has three stages, each with its own file:
//
//   - graph.go: extract the static call graph from a linked
//     bytecode.Program, conservatively over virtual dispatch (RTA:
//     every OpNew-instantiated class contributes its vtable targets),
//     and classify each call point's occurrences against its method's
//     CFG — anchor occurrences execute exactly once per completed
//     invocation, dead occurrences never execute.
//   - cover.go: shrink the all-points probe set by reverse deletion,
//     keeping only points the conservation system cannot derive.
//   - profiler.go: the vm.Profiler that increments probed points at
//     runtime and solves the system back to the full DCG.
//
// The recovered graph is exact (not an estimate) on every run that
// completes normally; the differential tests hold it byte-identical to
// the exhaustive profiler's graph across the benchmark suite and a
// corpus of generated programs.
package mincover

import (
	"sort"

	"gocbs/internal/bytecode"
)

// StaticEdge is one possible dynamic call edge: caller method, global
// call-site ID, and a callee the site may dispatch to. Static calls
// have exactly one callee; virtual sites get one edge per RTA-live
// vtable target. Field meanings match profile.Edge.
type StaticEdge struct {
	Caller, Site, Callee int
}

// Point identifies one instrumentable call location: the method whose
// body contains call instructions carrying Site. Inlining splices call
// instructions while keeping their original site IDs, so the same site
// can occur in several methods (and several times within one method);
// the (method, site) pair is the granularity a probe filter can
// actually distinguish at runtime, since vm.CallListener reports the
// executing caller and the site.
type Point struct {
	Method, Site int
}

// pointInfo accumulates what the extractor learns about one point.
// Every edge belongs to exactly one point (its Caller+Site), so edges
// partition across points.
type pointInfo struct {
	edges []int // indexes into Graph.Edges, canonical order

	// Occurrence counts of this point's call instructions in the
	// method body, by CFG class. occAnchor counts occurrences in
	// blocks that execute exactly once per completed invocation;
	// occDead counts statically unreachable occurrences.
	occTotal, occAnchor, occDead int

	// closure marks a point with at least one OpCallClosure occurrence.
	// Closure dispatch is not class-bound: the static target set is the
	// whole-program set of OpMakeClosure targets, a superset so coarse
	// that deriving such a point's edges from conservation alone is not
	// attempted — MinCover demotes closure points to always-probed.
	closure bool
}

// knownZero reports that every occurrence of the point is statically
// unreachable: its edges are provably zero and need no probe.
func (pi *pointInfo) knownZero() bool { return pi.occTotal == pi.occDead }

// anchorMult returns how many times the point's call instructions
// execute per completed invocation of the enclosing method, when that
// number is a compile-time constant: every live occurrence sits in an
// anchor block. ok is false when any occurrence is in a plain
// (conditional or looping) block.
func (pi *pointInfo) anchorMult() (mult int, ok bool) {
	if pi.occAnchor > 0 && pi.occAnchor+pi.occDead == pi.occTotal {
		return pi.occAnchor, true
	}
	return 0, false
}

// Graph is the static call graph of a program, annotated with the CFG
// facts the conservation solver needs. It holds plain integers (method
// IDs, site IDs) so it stays valid across program clones.
type Graph struct {
	NumMethods int

	// Edges in canonical (Caller, Site, Callee) order.
	Edges []StaticEdge

	// Points in canonical (Method, Site) order.
	Points []Point

	info map[Point]*pointInfo

	// in[m] lists indexes of edges whose Callee is m, ascending.
	in [][]int

	// anchors[m] lists m's points with a positive anchorMult, in
	// canonical order: measuring any one of them (or deriving its
	// sitecount) yields m's total entry count by division.
	anchors [][]Point
}

// IsClosurePoint reports whether p contains closure-call instructions.
func (g *Graph) IsClosurePoint(p Point) bool {
	pi := g.info[p]
	return pi != nil && pi.closure
}

// EdgesAt returns the indexes into g.Edges owned by point p.
func (g *Graph) EdgesAt(p Point) []int {
	if pi := g.info[p]; pi != nil {
		return pi.edges
	}
	return nil
}

// In returns the indexes of edges targeting method m.
func (g *Graph) In(m int) []int {
	if m < 0 || m >= len(g.in) {
		return nil
	}
	return g.in[m]
}

// Extract builds the static call graph of prog.
//
// Virtual dispatch is resolved conservatively with rapid type analysis:
// MJ objects are created only by OpNew, so the receiver of any virtual
// call is an instance of a class that appears as an OpNew operand
// somewhere in the program. A virtual site on slot s therefore gets one
// edge per distinct implementation reachable through the vtables of
// those instantiated classes. This is a sound superset of the dynamic
// edges — the cost is extra always-zero edges at megamorphic sites,
// which the conservation solver resolves to zero (see DESIGN.md for
// when this conservatism costs probes that CBS would not pay).
func Extract(prog *bytecode.Program) *Graph {
	g := &Graph{
		NumMethods: len(prog.Methods),
		info:       make(map[Point]*pointInfo),
	}

	// RTA instantiation pass; also detect OpHalt anywhere. A halt
	// unwinds every live frame without completing those invocations,
	// which would break the anchor accounting ("executes exactly once
	// per completed invocation"), so its presence disables anchor
	// classification program-wide. The mj compiler never emits OpHalt,
	// so in practice this costs nothing.
	instantiated := make([]bool, len(prog.Classes))
	anchorsSafe := true
	closureSeen := make(map[int]bool)
	var closureTargets []int // closure-RTA: every OpMakeClosure target
	for _, m := range prog.Methods {
		if m == nil {
			continue
		}
		for _, ins := range m.Code {
			switch ins.Op {
			case bytecode.OpNew:
				if c := int(ins.A); c >= 0 && c < len(instantiated) {
					instantiated[c] = true
				}
			case bytecode.OpMakeClosure:
				if t := int(ins.A); !closureSeen[t] {
					closureSeen[t] = true
					closureTargets = append(closureTargets, t)
				}
			case bytecode.OpHalt:
				anchorsSafe = false
			}
		}
	}
	sort.Ints(closureTargets)

	// Virtual targets per vtable slot, memoized: the distinct
	// implementations visible from any instantiated class.
	vtargets := make(map[int][]int)
	resolve := func(slot int) []int {
		if t, ok := vtargets[slot]; ok {
			return t
		}
		seen := make(map[int]bool)
		var out []int
		for ci, c := range prog.Classes {
			if c == nil || !instantiated[ci] || slot >= len(c.VTable) {
				continue
			}
			if impl := c.VTable[slot]; impl != nil && !seen[impl.ID] {
				seen[impl.ID] = true
				out = append(out, impl.ID)
			}
		}
		sort.Ints(out)
		vtargets[slot] = out
		return out
	}

	edgeIdx := make(map[StaticEdge]int)
	for _, m := range prog.Methods {
		if m == nil || len(m.Code) == 0 {
			continue
		}
		cls := classifyPCs(m.Code, anchorsSafe)
		for pc, ins := range m.Code {
			if !ins.Op.IsCall() {
				continue
			}
			p := Point{Method: m.ID, Site: int(ins.B)}
			pi := g.info[p]
			if pi == nil {
				pi = &pointInfo{}
				g.info[p] = pi
				g.Points = append(g.Points, p)
			}
			pi.occTotal++
			switch cls[pc] {
			case pcAnchor:
				pi.occAnchor++
			case pcDead:
				pi.occDead++
			}
			var targets []int
			switch ins.Op {
			case bytecode.OpCallStatic:
				targets = []int{int(ins.A)}
			case bytecode.OpCallClosure:
				// Closure dispatch is not class-bound; the sound target
				// set is every closure body created anywhere in the
				// program. The point is marked so MinCover keeps it
				// probed rather than trusting this coarse superset.
				targets = closureTargets
				pi.closure = true
			default:
				slot, _ := bytecode.DecodeVirtual(ins.A)
				targets = resolve(slot)
			}
			for _, t := range targets {
				e := StaticEdge{Caller: m.ID, Site: p.Site, Callee: t}
				if _, ok := edgeIdx[e]; !ok {
					edgeIdx[e] = len(g.Edges)
					g.Edges = append(g.Edges, e)
				}
			}
		}
	}

	// Canonicalize: sort edges and points, then rebuild the per-point
	// and per-method indexes in that order.
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Callee < b.Callee
	})
	sort.Slice(g.Points, func(i, j int) bool {
		a, b := g.Points[i], g.Points[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.Site < b.Site
	})
	g.in = make([][]int, g.NumMethods)
	for i, e := range g.Edges {
		g.info[Point{Method: e.Caller, Site: e.Site}].edges = append(
			g.info[Point{Method: e.Caller, Site: e.Site}].edges, i)
		if e.Callee >= 0 && e.Callee < g.NumMethods {
			g.in[e.Callee] = append(g.in[e.Callee], i)
		}
	}
	g.anchors = make([][]Point, g.NumMethods)
	for _, p := range g.Points {
		if _, ok := g.info[p].anchorMult(); ok {
			g.anchors[p.Method] = append(g.anchors[p.Method], p)
		}
	}
	return g
}
