package mincover

import (
	"bytes"
	"testing"

	"gocbs/internal/inline"
	"gocbs/internal/mj"
)

// TestRecoveryFuzzDifferential is the property gate for probe-count
// recovery: across a corpus of randomly generated, well-typed MJ
// programs, mincover's recovered DCG must equal exhaustive's exactly
// (byte-identical canonical encoding) on deterministic runs, with a
// probe set never larger than the call-point set. Half the corpus is
// additionally run through trivial inlining, which duplicates site IDs
// across methods — the case the (method, site) probe granularity
// exists for.
func TestRecoveryFuzzDifferential(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := int64(0); seed < int64(n); seed++ {
		src := mj.GenerateProgram(seed, 3+int(seed%4))
		prog, err := mj.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if seed%2 == 1 {
			if _, err := inline.Optimize(prog, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
				t.Fatalf("seed %d: inline: %v", seed, err)
			}
		}
		arg := seed * 13 % 97
		mc := checkExact(t, prog, arg, false)
		if c := mc.Cover; c.NumProbes() > c.NumPoints() {
			t.Errorf("seed %d: %d probes exceed %d points", seed, c.NumProbes(), c.NumPoints())
		}
	}
}

// TestRecoveryTwoRuns: the same cover instance drives two VMs (shared
// static analysis, per-VM profilers) and recovery stays exact for
// different arguments — the fleetsim usage pattern.
func TestRecoveryTwoRuns(t *testing.T) {
	src := mj.GenerateProgram(11, 5)
	for _, arg := range []int64{3, 71} {
		prog, err := mj.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		cover := Compute(prog)
		mc := FromCover(cover)
		diffRun(t, prog, arg, mc)
		if err := mc.Finalize(); err != nil {
			t.Fatal(err)
		}
		ex, err := mj.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		exp := exhaustiveRun(t, ex, arg)
		if !bytes.Equal(dcgBytes(t, mc.Graph), dcgBytes(t, exp)) {
			t.Fatalf("arg %d: recovered DCG differs from exhaustive", arg)
		}
	}
}
