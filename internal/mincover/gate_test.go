package mincover

import (
	"bytes"
	"fmt"
	"testing"

	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/inline"
	"gocbs/internal/mj"
	"gocbs/internal/opt"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

// gateTimerPeriod mirrors experiment.DefaultTimerPeriod without
// importing the experiment package.
const gateTimerPeriod = 3_000_000

// gateRef runs src's main under the reference AST interpreter.
func gateRef(t *testing.T, label, src string, arg int64) (int64, []int64) {
	t.Helper()
	toks, err := mj.Lex(src)
	if err != nil {
		t.Fatalf("%s: lex: %v\n%s", label, err, src)
	}
	ast, err := mj.Parse(toks)
	if err != nil {
		t.Fatalf("%s: parse: %v\n%s", label, err, src)
	}
	if err := mj.Check(ast); err != nil {
		t.Fatalf("%s: check: %v\n%s", label, err, src)
	}
	in := mj.NewRefInterp(ast, 50_000_000)
	r, err := in.CallFunction("main", arg)
	if err != nil {
		t.Fatalf("%s: reference run: %v\n%s", label, err, src)
	}
	return r, in.Output
}

// gateRun executes prog under p (nil for bare) and compares result and
// output against the reference. Divergences report the label (seed,
// shape, variant, observer) and the full generated source.
func gateRun(t *testing.T, label, src string, prog *bytecode.Program, arg int64, p vm.Profiler, timer uint64, wantR int64, wantO []int64) {
	t.Helper()
	m := vm.New(prog)
	m.MaxSteps = 4_000_000_000
	if p != nil {
		m.SetProfiler(p)
	}
	if timer > 0 {
		m.SetTimer(timer)
	}
	v, err := m.Run(arg)
	if err != nil {
		t.Fatalf("%s: vm run: %v\n%s", label, err, src)
	}
	if v.I != wantR {
		t.Fatalf("%s: result %d, reference %d\n%s", label, v.I, wantR, src)
	}
	if len(m.Output) != len(wantO) {
		t.Fatalf("%s: output length %d, reference %d\n%s", label, len(m.Output), len(wantO), src)
	}
	for i := range wantO {
		if m.Output[i] != wantO[i] {
			t.Fatalf("%s: output[%d] = %d, reference %d\n%s", label, i, m.Output[i], wantO[i], src)
		}
	}
}

// gateVariants compiles src three ways: as-is, trivially inlined, and
// superinstruction-fused. Each variant is an independent compile, since
// both rewrites mutate in place.
func gateVariants(t *testing.T, label, src string) map[string]*bytecode.Program {
	t.Helper()
	compile := func() *bytecode.Program {
		p, err := mj.Compile(src)
		if err != nil {
			t.Fatalf("%s: compile: %v\n%s", label, err, src)
		}
		return p
	}
	plain := compile()
	inlined := compile()
	if _, err := inline.Optimize(inlined, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
		t.Fatalf("%s: inline: %v\n%s", label, err, src)
	}
	fused := compile()
	if _, err := opt.FuseProgram(fused); err != nil {
		t.Fatalf("%s: fuse: %v\n%s", label, err, src)
	}
	return map[string]*bytecode.Program{"plain": plain, "inlined": inlined, "fused": fused}
}

// TestGeneratedDifferentialGate is the gate every generated program
// passes before the generator may ship: across ≥50 seeds cycling
// through every shape (half plain programs, half workload-protocol
// programs), each of {plain, inlined, fused} must match the reference
// interpreter's result and output under each of {bare, exhaustive,
// cbs, mincover} observers, exhaustive and mincover must agree
// byte-for-byte on the canonical DCG, and mincover must never observe
// an edge outside its static graph.
func TestGeneratedDifferentialGate(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 10
	}
	shapes := mj.Shapes()
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			t.Parallel()
			seed := int64(i)
			shape := shapes[i%len(shapes)]
			size := 2 + i%3
			var src string
			if i%2 == 0 {
				src = mj.GenerateShaped(seed, size, shape)
			} else {
				src = mj.GenerateWorkload(seed, size, shape)
			}
			arg := int64(i*13%89 + 1)
			label := fmt.Sprintf("seed=%d shape=%q size=%d", seed, shape, size)

			wantR, wantO := gateRef(t, label, src, arg)
			for name, prog := range gateVariants(t, label, src) {
				vl := label + " variant=" + name
				gateRun(t, vl+" bare", src, prog, arg, nil, 0, wantR, wantO)

				ex := profiler.NewExhaustive()
				gateRun(t, vl+" exhaustive", src, prog, arg, ex, 0, wantR, wantO)

				cbs := profiler.NewCBS(profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: profiler.FlavourRVM, Seed: 7})
				gateRun(t, vl+" cbs", src, prog, arg, cbs, gateTimerPeriod, wantR, wantO)

				mc := New(prog)
				gateRun(t, vl+" mincover", src, prog, arg, mc, 0, wantR, wantO)
				if err := mc.Finalize(); err != nil {
					t.Fatalf("%s: mincover finalize: %v\n%s", vl, err, src)
				}
				if mc.Unexpected != 0 {
					t.Fatalf("%s: %d dynamic edges outside the static graph\n%s", vl, mc.Unexpected, src)
				}
				if !bytes.Equal(dcgBytes(t, mc.Graph), dcgBytes(t, ex.Graph)) {
					t.Fatalf("%s: recovered DCG differs from exhaustive\n%s", vl, src)
				}
				if c := mc.Cover; c.NumProbes() > c.NumPoints() {
					t.Fatalf("%s: %d probes exceed %d points\n%s", vl, c.NumProbes(), c.NumPoints(), src)
				}
			}
		})
	}
}

// TestClosureBenchmarksDemotedNotExhaustive pins the closure handling
// of the new suite entries: their static graphs contain closure points,
// every closure point stays probed (the always-probed demotion), and
// the probe set is still strictly smaller than exhaustive
// instrumentation's point set.
func TestClosureBenchmarksDemotedNotExhaustive(t *testing.T) {
	for _, name := range []string{"closures", "phases"} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("benchmark %s missing", name)
		}
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		c := Compute(prog)
		nClosure := 0
		for _, p := range c.Graph.Points {
			if c.Graph.IsClosurePoint(p) {
				nClosure++
				if !c.Probed[p] {
					t.Errorf("%s: closure point %+v not probed", name, p)
				}
			}
		}
		if nClosure == 0 {
			t.Errorf("%s: no closure points in the static graph", name)
		}
		if c.NumProbes() >= c.NumPoints() {
			t.Errorf("%s: probes %d not strictly fewer than %d points", name, c.NumProbes(), c.NumPoints())
		}
		t.Logf("%s: %d closure points, %d/%d probed (ratio %.2f)",
			name, nClosure, c.NumProbes(), c.NumPoints(), c.ProbeRatio())
	}
}
