// Package api is the single source of truth for the cbsd daemon's HTTP
// surface: versioned endpoint paths, shared header names, the canonical
// JSON error envelope, typed request/response bodies, and the one HTTP
// client every caller — delta pushers, plan pullers, tools, and the
// federation tier's leaf→root forwarder — speaks through.
//
// Before this package existed the endpoint paths and the
// X-Cbs-Pusher/X-Cbs-Seq header strings were duplicated across the
// daemon, the push client, the plan client, and the puller, and each of
// the three clients hand-rolled its own retry/timeout policy. Everything
// route- or wire-shaped now lives here; the daemon and every client
// import these constants, so grep for an endpoint literal outside this
// package should come up empty.
//
// # Versioning
//
// Routes live under /v1. The pre-versioning flat paths ("/ingest",
// "/plan", ...) were served as aliases of their /v1 equivalents for
// one deprecation release and are now gone: the daemon answers them
// with 404 and an error envelope naming the /v1 route to move to
// (RetiredPaths is the hint table). New-in-v1 routes (flush, register,
// leaves, manifest) never had an unversioned form.
package api

// Versioned endpoint paths. The daemon registers each of these;
// clients use only these.
const (
	// PathIngest accepts one POSTed DCGB-serialized call-graph delta,
	// idempotent under the HeaderPusher/HeaderSeq stamp.
	PathIngest = "/v1/ingest"
	// PathSnapshot streams the merged aggregate DCG (GET, binary DCGB).
	PathSnapshot = "/v1/snapshot"
	// PathTop returns the k heaviest edges (GET ?k=).
	PathTop = "/v1/top"
	// PathSite returns one call site's receiver-target distribution
	// (GET ?id=).
	PathSite = "/v1/site"
	// PathOverlap scores an uploaded reference DCG against the store
	// with the paper's overlap metric. A read — the store is not
	// mutated — so it is GET with a body, like Elasticsearch's _search.
	// (POST was tolerated during the legacy-alias deprecation release
	// and is 405 now that the aliases are gone.)
	PathOverlap = "/v1/overlap"
	// PathDecay runs one decay epoch (POST ?factor=&prune=).
	PathDecay = "/v1/decay"
	// PathPlan serves the compiled inlining plan for ?program= (GET,
	// binary plan wire format, strong ETag).
	PathPlan = "/v1/plan"
	// PathMetrics reports operational counters (GET, JSON).
	PathMetrics = "/v1/metrics"
	// PathHealthz is the liveness probe (GET).
	PathHealthz = "/v1/healthz"
	// PathFlush forces a leaf daemon to forward its accumulated delta
	// upstream now (POST; 404 on a daemon with no upstream).
	PathFlush = "/v1/flush"
	// PathRegister accepts a leaf's registration/heartbeat (POST,
	// LeafStatus body).
	PathRegister = "/v1/register"
	// PathLeaves lists the leaves registered with this daemon (GET).
	PathLeaves = "/v1/leaves"
	// PathManifest registers one program version's method/site manifest
	// (POST, bytecode manifest JSON, stamped with HeaderProgram +
	// HeaderProgramVersion). The store uses manifest pairs to carry
	// profile edges forward across a version flip.
	PathManifest = "/v1/manifest"
)

// RetiredPaths maps every retired pre-versioning path to the /v1 route
// that replaced it. The aliases were served for one deprecation
// release; the daemon now answers each with 404 whose error message
// names the replacement, so a straggler's logs say where to go. This
// table is the only place the unversioned strings exist.
var RetiredPaths = map[string]string{
	"/ingest":   PathIngest,
	"/snapshot": PathSnapshot,
	"/top":      PathTop,
	"/site":     PathSite,
	"/overlap":  PathOverlap,
	"/decay":    PathDecay,
	"/plan":     PathPlan,
	"/metrics":  PathMetrics,
	"/healthz":  PathHealthz,
}

// Shared header names.
const (
	// HeaderPusher carries the pusher's stable identity on ingest
	// requests; with HeaderSeq it makes ingest exactly-once. A leaf
	// daemon forwarding upstream is itself a pusher and stamps these.
	HeaderPusher = "X-Cbs-Pusher"
	// HeaderSeq carries the increment's sequence number (uint64 >= 1,
	// strictly increasing per pusher).
	HeaderSeq = "X-Cbs-Seq"
	// HeaderPlanEpoch mirrors the served plan's epoch for humans and
	// relays; the binary body remains canonical.
	HeaderPlanEpoch = "X-Plan-Epoch"
	// HeaderPlanPolicy names the inline policy the served plan was
	// compiled under.
	HeaderPlanPolicy = "X-Plan-Policy"
	// HeaderRelayStale marks a plan response served from a leaf relay's
	// cache while the root was unreachable ("1" when stale).
	HeaderRelayStale = "X-Cbs-Relay-Stale"
	// HeaderProgram names the program a pushed profile delta was
	// collected from. With HeaderProgramVersion it keys the store's
	// per-(program, version) graphs; both must be present together.
	// Unstamped pushes land in the legacy merged aggregate.
	HeaderProgram = "X-Cbs-Program"
	// HeaderProgramVersion carries the program's content-addressed
	// version identity (bytecode.Program.Version — 16 hex chars).
	HeaderProgramVersion = "X-Cbs-Program-Version"
)

// Error codes carried in the error envelope. Coarse by design: the code
// is for programs (retry? fix the request? give up?), Msg is for
// humans.
const (
	CodeBadRequest       = "bad_request"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeTooLarge         = "too_large"
	CodeInternal         = "internal"
	CodeUpstream         = "upstream_unavailable"
	// CodeCapacity marks a request refused because a bounded server-side
	// ledger (e.g. the leaf registry) is full; retry later.
	CodeCapacity = "capacity"
)
