package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"gocbs/internal/profile"
)

// Retry defaults, shared by every consumer: delta pushers, plan
// pullers, the federation forwarder, and tools. Retrying is safe where
// it is enabled — ingest is idempotent under the (pusher, seq) stamp
// and every other retried verb is a read.
const (
	// DefaultRetries is how many times a failed request is retried
	// after the first attempt.
	DefaultRetries = 4
	// DefaultBackoff is the first retry's base delay; each further
	// retry doubles it.
	DefaultBackoff = 100 * time.Millisecond
	// DefaultMaxBackoff caps the exponential growth.
	DefaultMaxBackoff = 2 * time.Second
	// DefaultTimeout is the per-request timeout of NewClient's
	// underlying http.Client.
	DefaultTimeout = 10 * time.Second
)

// Client is the one HTTP client for a cbsd daemon. It owns the retry/
// backoff/timeout policy that was previously hand-rolled three times
// (dcgstore delta push, plan ETag pull, puller); the federation tier's
// leaf→root forwarder is its fourth consumer, not a fourth copy.
//
// A Client is safe for concurrent use as long as its fields are not
// mutated after first use; it keeps no per-request state (sequence
// numbers and ETag caches belong to the wrappers that own them).
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8944".
	BaseURL string
	// HTTPClient defaults to a client with DefaultTimeout.
	HTTPClient *http.Client
	// Retries, Backoff, MaxBackoff tune retry behaviour; zero values
	// select the Default* constants. Retries < 0 disables retrying.
	Retries    int
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// NewClient returns a client for the daemon at baseURL with the default
// retry policy and timeout.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: DefaultTimeout},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	switch {
	case c.Retries == 0:
		return DefaultRetries
	case c.Retries < 0:
		return 0
	default:
		return c.Retries
	}
}

// backoffDelay returns the sleep before retry attempt (0-based), an
// exponentially growing delay capped at MaxBackoff with uniform jitter
// in [d/2, d) so a fleet knocked over together does not retry in
// lockstep.
func (c *Client) backoffDelay(attempt int) time.Duration {
	base, max := c.Backoff, c.MaxBackoff
	if base <= 0 {
		base = DefaultBackoff
	}
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	d := base << attempt
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// retryable classifies an attempt error. Network-level failures are
// ambiguous (the request may have been applied) and only idempotent
// requests retry through them; HTTPErrors carry their own verdict.
func retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Retryable()
	}
	return true // network-level failure
}

// do runs one request-building closure under the retry policy.
// idempotent=false downgrades to a single attempt: a non-idempotent
// request (decay) that failed ambiguously must surface the error, not
// silently double-apply.
func (c *Client) do(idempotent bool, attemptFn func() error) error {
	retries := c.retries()
	if !idempotent {
		retries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := attemptFn()
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) || attempt >= retries {
			if attempt > 0 {
				return fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
			}
			return lastErr
		}
		time.Sleep(c.backoffDelay(attempt))
	}
}

// roundTrip makes one attempt: build the request, send it, and convert
// a non-2xx status into an *HTTPError. handle consumes the successful
// response body.
func (c *Client) roundTrip(method, path string, header http.Header, body []byte, handle func(*http.Response) error) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, errMaxBody))
		resp.Body.Close()
	}()
	// 304 is a success for conditional GETs, not an error.
	if (resp.StatusCode < 200 || resp.StatusCode >= 300) && resp.StatusCode != http.StatusNotModified {
		return ReadHTTPError(resp)
	}
	if handle == nil {
		return nil
	}
	return handle(resp)
}

// getJSON GETs path and decodes the JSON body into out, retrying.
func (c *Client) getJSON(path string, out any) error {
	return c.do(true, func() error {
		return c.roundTrip(http.MethodGet, path, nil, nil, func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(out)
		})
	})
}

// PushDelta sends one stamped increment: the serialized DCG payload
// under the given (pusher, sequence) identity, POSTed to PathIngest.
// Transient failures retry with backoff; a duplicate response — the
// daemon already applied this sequence on an attempt whose response was
// lost — counts as success. The same (pusher, seq) pair must always
// carry the same bytes. An empty pusher sends an unstamped legacy push
// (no idempotency, still retried: the daemon's merge is commutative).
func (c *Client) PushDelta(pusher string, seq uint64, payload []byte) (*IngestResponse, error) {
	return c.PushDeltaKeyed(pusher, seq, ProgramKey{}, payload)
}

// PushDeltaKeyed is PushDelta with a program identity: the delta is
// merged into the per-(program, version) graph named by key instead of
// the legacy merged aggregate. A zero key degrades to PushDelta.
func (c *Client) PushDeltaKeyed(pusher string, seq uint64, key ProgramKey, payload []byte) (*IngestResponse, error) {
	hdr := http.Header{"Content-Type": {"application/octet-stream"}}
	if pusher != "" {
		hdr.Set(HeaderPusher, pusher)
		hdr.Set(HeaderSeq, strconv.FormatUint(seq, 10))
	}
	if !key.IsZero() {
		hdr.Set(HeaderProgram, key.Program)
		hdr.Set(HeaderProgramVersion, key.Version)
	}
	var out IngestResponse
	err := c.do(true, func() error {
		return c.roundTrip(http.MethodPost, PathIngest, hdr, payload, func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("push: %w", err)
	}
	return &out, nil
}

// PushManifest registers one program version's method/site manifest
// (serialized bytecode manifest JSON) with the daemon. Idempotent:
// re-registering the same version is a no-op acknowledgement.
func (c *Client) PushManifest(key ProgramKey, manifestJSON []byte) (*ManifestResponse, error) {
	hdr := http.Header{
		"Content-Type":       {"application/json"},
		HeaderProgram:        {key.Program},
		HeaderProgramVersion: {key.Version},
	}
	var out ManifestResponse
	err := c.do(true, func() error {
		return c.roundTrip(http.MethodPost, PathManifest, hdr, manifestJSON, func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	return &out, nil
}

// PushDCG serializes g and pushes it via PushDelta.
func (c *Client) PushDCG(pusher string, seq uint64, g *profile.DCG) (*IngestResponse, error) {
	return c.PushDCGKeyed(pusher, seq, ProgramKey{}, g)
}

// PushDCGKeyed serializes g and pushes it via PushDeltaKeyed.
func (c *Client) PushDCGKeyed(pusher string, seq uint64, key ProgramKey, g *profile.DCG) (*IngestResponse, error) {
	var body bytes.Buffer
	if _, err := g.WriteTo(&body); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	return c.PushDeltaKeyed(pusher, seq, key, body.Bytes())
}

// FetchSnapshot retrieves the daemon's merged DCG from PathSnapshot.
func (c *Client) FetchSnapshot() (*profile.DCG, error) {
	var g *profile.DCG
	err := c.do(true, func() error {
		return c.roundTrip(http.MethodGet, PathSnapshot, nil, nil, func(resp *http.Response) error {
			var err error
			g, err = profile.ReadDCG(resp.Body)
			return err
		})
	})
	if err != nil {
		return nil, fmt.Errorf("fetch: %w", err)
	}
	return g, nil
}

// GetPlan fetches the plan for program from PathPlan, conditionally
// when ifNoneMatch carries a previous response's ETag. The body stays
// raw bytes: decoding is the plan package's business (api sits below
// plan in the import graph).
func (c *Client) GetPlan(program, ifNoneMatch string) (*PlanResult, error) {
	return c.GetPlanVersion(program, "", ifNoneMatch)
}

// GetPlanVersion is GetPlan scoped to one program version: the daemon
// serves only a plan compiled for exactly that build and answers 404
// when it cannot. An empty version asks for the daemon's canonical
// build of the program (the pre-versioning behaviour).
func (c *Client) GetPlanVersion(program, version, ifNoneMatch string) (*PlanResult, error) {
	path := PathPlan + "?program=" + url.QueryEscape(program)
	if version != "" {
		path += "&version=" + url.QueryEscape(version)
	}
	var hdr http.Header
	if ifNoneMatch != "" {
		hdr = http.Header{"If-None-Match": {ifNoneMatch}}
	}
	var out *PlanResult
	err := c.do(true, func() error {
		return c.roundTrip(http.MethodGet, path, hdr, nil, func(resp *http.Response) error {
			res := &PlanResult{
				ETag:        resp.Header.Get("ETag"),
				NotModified: resp.StatusCode == http.StatusNotModified,
				Policy:      resp.Header.Get(HeaderPlanPolicy),
				Stale:       resp.Header.Get(HeaderRelayStale) == "1",
			}
			if e := resp.Header.Get(HeaderPlanEpoch); e != "" {
				res.Epoch, _ = strconv.ParseUint(e, 10, 64)
			}
			if !res.NotModified {
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					return err
				}
				res.Body = body
			}
			out = res
			return nil
		})
	})
	if err != nil {
		return nil, fmt.Errorf("plan fetch %s: %w", program, err)
	}
	return out, nil
}

// Top returns the k heaviest edges (k <= 0 selects the daemon default).
func (c *Client) Top(k int) (*TopResponse, error) {
	path := PathTop
	if k > 0 {
		path += "?k=" + strconv.Itoa(k)
	}
	var out TopResponse
	if err := c.getJSON(path, &out); err != nil {
		return nil, fmt.Errorf("top: %w", err)
	}
	return &out, nil
}

// Site returns one call site's receiver-target distribution.
func (c *Client) Site(id int) (*SiteResponse, error) {
	var out SiteResponse
	if err := c.getJSON(PathSite+"?id="+strconv.Itoa(id), &out); err != nil {
		return nil, fmt.Errorf("site: %w", err)
	}
	return &out, nil
}

// Overlap scores ref against the daemon's snapshot. The request is a
// GET with a body (a read, like a search).
func (c *Client) Overlap(ref *profile.DCG) (*OverlapResponse, error) {
	var body bytes.Buffer
	if _, err := ref.WriteTo(&body); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	hdr := http.Header{"Content-Type": {"application/octet-stream"}}
	var out OverlapResponse
	err := c.do(true, func() error {
		return c.roundTrip(http.MethodGet, PathOverlap, hdr, body.Bytes(), func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("overlap: %w", err)
	}
	return &out, nil
}

// Decay runs one decay epoch. Not idempotent — a retried decay would
// compound — so a failed request makes exactly one attempt.
func (c *Client) Decay(factor, prune float64) (*DecayResponse, error) {
	path := fmt.Sprintf("%s?factor=%g", PathDecay, factor)
	if prune > 0 {
		path += fmt.Sprintf("&prune=%g", prune)
	}
	var out DecayResponse
	err := c.do(false, func() error {
		return c.roundTrip(http.MethodPost, path, nil, nil, func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("decay: %w", err)
	}
	return &out, nil
}

// Metrics fetches the daemon's operational counters.
func (c *Client) Metrics() (*MetricsResponse, error) {
	var out MetricsResponse
	if err := c.getJSON(PathMetrics, &out); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return &out, nil
}

// Healthz probes liveness.
func (c *Client) Healthz() error {
	err := c.do(true, func() error {
		return c.roundTrip(http.MethodGet, PathHealthz, nil, nil, nil)
	})
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	return nil
}

// Flush forces a leaf daemon to forward its accumulated delta upstream
// now. Idempotent: a flush with nothing new pushes nothing.
func (c *Client) Flush() (*FlushResponse, error) {
	var out FlushResponse
	err := c.do(true, func() error {
		return c.roundTrip(http.MethodPost, PathFlush, nil, nil, func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("flush: %w", err)
	}
	return &out, nil
}

// Register sends a leaf registration/heartbeat to a root daemon.
func (c *Client) Register(st LeafStatus) (*RegisterResponse, error) {
	body, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	hdr := http.Header{"Content-Type": {"application/json"}}
	var out RegisterResponse
	err = c.do(true, func() error {
		return c.roundTrip(http.MethodPost, PathRegister, hdr, body, func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("register: %w", err)
	}
	return &out, nil
}

// Leaves lists the leaves registered with a root daemon.
func (c *Client) Leaves() (*LeavesResponse, error) {
	var out LeavesResponse
	if err := c.getJSON(PathLeaves, &out); err != nil {
		return nil, fmt.Errorf("leaves: %w", err)
	}
	return &out, nil
}
