package api

import (
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
)

// Error is the canonical JSON error envelope every non-2xx daemon
// response carries: {"code": "...", "msg": "..."}. Code is one of the
// Code* constants and is meant for programs; Msg is for humans and
// carries no structure a client may rely on.
type Error struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

func (e *Error) Error() string { return e.Code + ": " + e.Msg }

// WriteError answers a request with status and the error envelope.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(Error{Code: code, Msg: msg})
}

// WriteErrorf is WriteError with a format string.
func WriteErrorf(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteError(w, status, code, fmt.Sprintf(format, args...))
}

// WriteMethodNotAllowed answers 405 with the envelope and the Allow
// header the RFC requires.
func WriteMethodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
		"method not allowed: use "+allow)
}

// HTTPError is the client-side view of a non-2xx response: the HTTP
// status plus the decoded envelope. Responses from pre-envelope daemons
// (plain-text http.Error bodies) decode with Code="" and the raw text
// as Msg, so callers can still print something useful.
type HTTPError struct {
	Status int
	Code   string
	Msg    string
}

func (e *HTTPError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("%d %s: %s", e.Status, e.Code, e.Msg)
	}
	return fmt.Sprintf("%d: %s", e.Status, e.Msg)
}

// Retryable reports whether the response is worth retrying: server-side
// trouble or throttling, never a 4xx protocol error (the same bytes
// would just fail again).
func (e *HTTPError) Retryable() bool {
	return e.Status >= 500 ||
		e.Status == http.StatusRequestTimeout ||
		e.Status == http.StatusTooManyRequests
}

// errMaxBody caps how much of an error body a client reads.
const errMaxBody = 2048

// ReadHTTPError drains a non-2xx response into an HTTPError, decoding
// the envelope when the body is JSON and falling back to the raw text
// otherwise.
func ReadHTTPError(resp *http.Response) *HTTPError {
	he := &HTTPError{Status: resp.StatusCode}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, errMaxBody))
	ct, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if ct == "application/json" {
		var env Error
		if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
			he.Code, he.Msg = env.Code, env.Msg
			return he
		}
	}
	he.Msg = strings.TrimSpace(string(body))
	if he.Msg == "" {
		he.Msg = resp.Status
	}
	return he
}
