package api

import (
	"regexp"

	"gocbs/internal/profile"
)

// ProgramKey identifies one build of one program: the name plus its
// content-addressed version (bytecode.Program.Version). It is the
// store's sharding key for per-version call graphs and the plan
// cache's scoping key. The zero key means "unversioned" — the legacy
// merged aggregate that unstamped pushes land in.
type ProgramKey struct {
	Program string `json:"program"`
	Version string `json:"version"`
}

// IsZero reports whether the key carries no identity (legacy path).
func (k ProgramKey) IsZero() bool { return k.Program == "" && k.Version == "" }

// String renders the key in its canonical "program@version" spelling —
// the form used in persistence file names and cache-map keys. '@' is
// excluded from both the program-name and version alphabets, so the
// rendering splits back unambiguously.
func (k ProgramKey) String() string { return k.Program + "@" + k.Version }

var versionRE = regexp.MustCompile(`^[0-9a-f]{1,64}$`)

// ValidProgramVersion bounds a wire-supplied version string: lowercase
// hex, 1-64 chars (the generator emits exactly 16).
func ValidProgramVersion(v string) bool { return versionRE.MatchString(v) }

// ManifestResponse acknowledges one registered program-version
// manifest.
type ManifestResponse struct {
	Registered bool `json:"registered"`
	// CarriedEdges counts edges carried forward into this version from
	// its predecessor's graph (0 when there is no predecessor or no
	// method survived unchanged).
	CarriedEdges int `json:"carried_edges"`
	// CarriedWeight is those edges' total weight.
	CarriedWeight float64 `json:"carried_weight"`
}

// IngestResponse acknowledges one merged (or deduplicated) delta.
type IngestResponse struct {
	// Applied is true when the delta was merged; Duplicate is its
	// complement — the (pusher, seq) stamp had already been applied, so
	// the daemon acknowledged without re-merging.
	Applied      bool    `json:"applied"`
	Duplicate    bool    `json:"duplicate"`
	MergedEdges  int     `json:"merged_edges"`
	MergedWeight float64 `json:"merged_weight"`
	StoreEdges   int     `json:"store_edges"`
	StoreWeight  float64 `json:"store_weight"`
}

// Edge is one weighted call edge in a TopResponse.
type Edge struct {
	Caller  int     `json:"caller"`
	Site    int     `json:"site"`
	Callee  int     `json:"callee"`
	Weight  float64 `json:"weight"`
	Percent float64 `json:"percent"`
}

// TopResponse lists the k heaviest edges of the current snapshot.
type TopResponse struct {
	Edges       []Edge  `json:"edges"`
	TotalWeight float64 `json:"total_weight"`
}

// SiteResponse is one call site's receiver-target distribution — the
// guarded-inlining input of the paper, served over HTTP.
type SiteResponse struct {
	Site         int                    `json:"site"`
	SiteWeightPc float64                `json:"site_weight_pc"`
	Targets      []profile.TargetWeight `json:"targets"`
}

// OverlapResponse scores an uploaded reference DCG against the store
// with the paper's overlap metric.
type OverlapResponse struct {
	Overlap        float64 `json:"overlap"`
	StoreEdges     int     `json:"store_edges"`
	ReferenceEdges int     `json:"reference_edges"`
}

// DecayResponse reports one on-demand decay epoch.
type DecayResponse struct {
	Epoch       uint64 `json:"epoch"`
	PrunedEdges int    `json:"pruned_edges"`
}

// MetricsResponse is the daemon's operational-counter digest. The
// ingest-latency fields appear once at least one ingest has been
// observed; the plan_* fields appear when the plan service is enabled
// (on a leaf, when the relay is enabled).
type MetricsResponse struct {
	Edges           int     `json:"edges"`
	TotalWeight     float64 `json:"total_weight"`
	SamplesIngested float64 `json:"samples_ingested"`
	Merges          uint64  `json:"merges"`
	DecayEpoch      uint64  `json:"decay_epoch"`
	Shards          int     `json:"shards"`
	Pushers         int     `json:"pushers"`
	Ingests         uint64  `json:"ingests"`
	IngestErrors    uint64  `json:"ingest_errors"`
	IngestDups      uint64  `json:"ingest_duplicates"`
	MergeMsTotal    float64 `json:"merge_ms_total"`
	MergeMsMean     float64 `json:"merge_ms_mean"`
	UptimeS         float64 `json:"uptime_s"`

	IngestLat *LatencyMetrics `json:"ingest_lat,omitempty"`
	Plan      *PlanMetrics    `json:"plan,omitempty"`
	Forward   *ForwardMetrics `json:"forward,omitempty"`

	// The flattened aliases below predate the nested groups; they are
	// what existing scrapers (and the perf trajectory) read, so the
	// daemon keeps populating both for one release.
	IngestMsCount int     `json:"ingest_ms_count,omitempty"`
	IngestMsMean  float64 `json:"ingest_ms_mean,omitempty"`
	IngestMsP50   float64 `json:"ingest_ms_p50,omitempty"`
	IngestMsP99   float64 `json:"ingest_ms_p99,omitempty"`
	IngestMsMax   float64 `json:"ingest_ms_max,omitempty"`

	PlanPrograms      int    `json:"plan_programs,omitempty"`
	PlanComputed      uint64 `json:"plan_computed,omitempty"`
	PlanUnchanged     uint64 `json:"plan_unchanged,omitempty"`
	PlanCompileErrors uint64 `json:"plan_compile_errors,omitempty"`
	PlanRequests      uint64 `json:"plan_requests,omitempty"`
	PlanNotModified   uint64 `json:"plan_not_modified,omitempty"`
	PlanReqErrors     uint64 `json:"plan_request_errors,omitempty"`

	// ProgramVersions counts the distinct (program, version) graphs the
	// store currently keeps (0 on a daemon that has only seen unstamped
	// pushes).
	ProgramVersions int `json:"program_versions,omitempty"`
	// VersionSubstoresEvicted counts retired (program, version)
	// substores the TTL garbage collector has dropped since start —
	// versions the fleet rolled off of whose graphs went idle.
	VersionSubstoresEvicted uint64 `json:"version_substores_evicted,omitempty"`
	// PlanVersionMismatches counts plan requests refused because the
	// requested program version is not the one the daemon serves — the
	// fleet-visible signal that pullers are running a build the root
	// does not know (they previously degraded silently).
	PlanVersionMismatches uint64 `json:"plan_version_mismatches,omitempty"`
}

// LatencyMetrics is a histogram digest in milliseconds.
type LatencyMetrics struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// PlanMetrics covers the plan service (root) or plan relay (leaf).
type PlanMetrics struct {
	Programs      int    `json:"programs"`
	Computed      uint64 `json:"computed"`
	Unchanged     uint64 `json:"unchanged"`
	CompileErrors uint64 `json:"compile_errors"`
	Requests      uint64 `json:"requests"`
	NotModified   uint64 `json:"not_modified"`
	RequestErrors uint64 `json:"request_errors"`
	// Relay-only: conditional refreshes against the root and responses
	// served stale because the root was unreachable.
	RelayRefreshes uint64 `json:"relay_refreshes,omitempty"`
	RelayStale     uint64 `json:"relay_stale,omitempty"`
	// VersionMismatches counts plan requests refused because the
	// requested program version is unknown to this daemon.
	VersionMismatches uint64 `json:"version_mismatches,omitempty"`
}

// ForwardMetrics covers a leaf's upstream forwarder.
type ForwardMetrics struct {
	// Seq is the highest sequence number pushed upstream; Pending is
	// how many captured increments await acknowledgement.
	Seq       uint64  `json:"seq"`
	Pending   int     `json:"pending"`
	Forwards  uint64  `json:"forwards"`
	Errors    uint64  `json:"errors"`
	AckEdges  int     `json:"ack_edges"`
	AckWeight float64 `json:"ack_weight"`
}

// FlushResponse reports one forced leaf→root forward cycle.
type FlushResponse struct {
	// Forwarded is true when every captured increment (including any
	// newly captured by this flush) was acknowledged upstream.
	Forwarded bool `json:"forwarded"`
	// Seq is the highest sequence number acknowledged upstream;
	// Pending counts increments still queued (non-zero only when the
	// upstream push failed).
	Seq     uint64 `json:"seq"`
	Pending int    `json:"pending"`
	// Edges/Weight describe the increment captured by this flush
	// (zero when the store had nothing new).
	Edges  int     `json:"edges"`
	Weight float64 `json:"weight"`
}

// LeafStatus is one leaf's registration/heartbeat body and the root's
// per-leaf ledger entry.
type LeafStatus struct {
	// ID is the leaf's upstream pusher identity — the X-Cbs-Pusher
	// value its forwarded increments are stamped with.
	ID string `json:"id"`
	// Addr is the leaf's own base URL, so tools can walk the tree.
	Addr string `json:"addr,omitempty"`
	// Seq is the highest sequence the leaf has pushed upstream.
	Seq uint64 `json:"seq"`
	// Edges/Weight describe the leaf's acknowledged cumulative graph.
	Edges  int     `json:"edges"`
	Weight float64 `json:"weight"`
}

// RegisterResponse acknowledges a leaf registration.
type RegisterResponse struct {
	Registered bool `json:"registered"`
	// Leaves is the root's current registered-leaf count.
	Leaves int `json:"leaves"`
}

// LeavesResponse lists the leaves registered with a root, sorted by ID.
type LeavesResponse struct {
	Leaves []LeafStatus `json:"leaves"`
}

// PlanResult is a conditional plan fetch's outcome. Body is the binary
// plan wire format (nil on NotModified); decoding it is the plan
// package's business — api stays below plan in the import graph so
// plan.Client can wrap api.Client.
type PlanResult struct {
	Body        []byte
	ETag        string
	NotModified bool
	// Epoch and Policy mirror the response headers.
	Epoch  uint64
	Policy string
	// Stale is true when a leaf relay served its cache because the
	// root was unreachable.
	Stale bool
}
