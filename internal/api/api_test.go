package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gocbs/internal/profile"
)

// fastClient returns a Client aimed at srv with near-zero backoff so
// retry tests run in microseconds.
func fastClient(srv *httptest.Server) *Client {
	c := NewClient(srv.URL)
	c.Backoff = time.Microsecond
	c.MaxBackoff = 10 * time.Microsecond
	return c
}

func TestRetiredPathsCoverEveryPreFederationRoute(t *testing.T) {
	// Every pre-federation route must have exactly one retired
	// unversioned path pointing at it (the 404 hint table); the
	// federation-era routes must have none (they never existed
	// unversioned).
	preFederation := []string{
		PathIngest, PathSnapshot, PathTop, PathSite, PathOverlap,
		PathDecay, PathPlan, PathMetrics, PathHealthz,
	}
	hinted := make(map[string]int)
	for retired, v1 := range RetiredPaths {
		if strings.HasPrefix(retired, "/v1/") {
			t.Errorf("retired path %q is already versioned", retired)
		}
		if "/v1"+retired != v1 {
			t.Errorf("retired path %q -> %q: want /v1%s", retired, v1, retired)
		}
		hinted[v1]++
	}
	for _, p := range preFederation {
		if hinted[p] != 1 {
			t.Errorf("route %s has %d retired paths, want 1", p, hinted[p])
		}
	}
	for _, p := range []string{PathFlush, PathRegister, PathLeaves} {
		if hinted[p] != 0 {
			t.Errorf("federation route %s must not have a retired unversioned form", p)
		}
	}
}

func TestErrorEnvelopeRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusBadRequest, CodeBadRequest, "no good")
	resp := rec.Result()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	he := ReadHTTPError(resp)
	if he.Status != http.StatusBadRequest || he.Code != CodeBadRequest || he.Msg != "no good" {
		t.Fatalf("round trip got %+v", he)
	}
	if he.Retryable() {
		t.Fatal("400 must not be retryable")
	}
}

func TestReadHTTPErrorPlainTextFallback(t *testing.T) {
	// A pre-envelope daemon answers with http.Error plain text; the
	// client must still surface the message.
	rec := httptest.NewRecorder()
	http.Error(rec, "old-style failure", http.StatusServiceUnavailable)
	he := ReadHTTPError(rec.Result())
	if he.Code != "" || he.Msg != "old-style failure" {
		t.Fatalf("got %+v", he)
	}
	if !he.Retryable() {
		t.Fatal("503 must be retryable")
	}
}

func TestWriteMethodNotAllowed(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteMethodNotAllowed(rec, "POST")
	resp := rec.Result()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("Allow = %q", allow)
	}
	if he := ReadHTTPError(resp); he.Code != CodeMethodNotAllowed {
		t.Fatalf("code = %q", he.Code)
	}
}

func TestPushDeltaRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			WriteError(w, http.StatusInternalServerError, CodeInternal, "transient")
			return
		}
		if r.URL.Path != PathIngest {
			t.Errorf("path = %q, want %s", r.URL.Path, PathIngest)
		}
		if r.Header.Get(HeaderPusher) != "p-1" || r.Header.Get(HeaderSeq) != "7" {
			t.Errorf("stamp headers = %q/%q", r.Header.Get(HeaderPusher), r.Header.Get(HeaderSeq))
		}
		json.NewEncoder(w).Encode(IngestResponse{Applied: true, MergedEdges: 1})
	}))
	defer srv.Close()
	g := profile.NewDCG()
	g.AddSample(profile.Edge{Caller: 1, Site: 2, Callee: 3}, 5)
	resp, err := fastClient(srv).PushDCG("p-1", 7, g)
	if err != nil {
		t.Fatalf("PushDCG: %v", err)
	}
	if !resp.Applied || resp.MergedEdges != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

func TestPushDeltaGivesUpOnPermanentError(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "malformed")
	}))
	defer srv.Close()
	_, err := fastClient(srv).PushDelta("p-1", 1, []byte("junk"))
	if err == nil {
		t.Fatal("want error")
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Code != CodeBadRequest {
		t.Fatalf("err = %v, want wrapped bad_request HTTPError", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx must not retry)", n)
	}
}

func TestDecayNeverRetries(t *testing.T) {
	// Decay is not idempotent: an ambiguous failure must surface, not
	// silently double-apply on retry.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusInternalServerError, CodeInternal, "boom")
	}))
	defer srv.Close()
	if _, err := fastClient(srv).Decay(0.5, 0); err == nil {
		t.Fatal("want error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1", n)
	}
}

func TestGetPlanConditional(t *testing.T) {
	const etag = `"plan-3-00000000deadbeef"`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathPlan || r.URL.Query().Get("program") != "javac" {
			t.Errorf("unexpected request %s %s", r.URL.Path, r.URL.RawQuery)
		}
		w.Header().Set("ETag", etag)
		w.Header().Set(HeaderPlanEpoch, "3")
		w.Header().Set(HeaderPlanPolicy, "trivial")
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Write([]byte("plan-bytes"))
	}))
	defer srv.Close()
	c := fastClient(srv)

	first, err := c.GetPlan("javac", "")
	if err != nil {
		t.Fatalf("GetPlan: %v", err)
	}
	if first.NotModified || string(first.Body) != "plan-bytes" || first.ETag != etag ||
		first.Epoch != 3 || first.Policy != "trivial" {
		t.Fatalf("first = %+v", first)
	}

	second, err := c.GetPlan("javac", first.ETag)
	if err != nil {
		t.Fatalf("conditional GetPlan: %v", err)
	}
	if !second.NotModified || second.Body != nil {
		t.Fatalf("second = %+v", second)
	}
}

func TestFetchSnapshotRoundTrip(t *testing.T) {
	want := profile.NewDCG()
	want.AddSample(profile.Edge{Caller: 1, Site: 2, Callee: 3}, 4)
	want.AddSample(profile.Edge{Caller: 5, Site: 6, Callee: 7}, 8)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathSnapshot {
			t.Errorf("path = %q", r.URL.Path)
		}
		want.WriteTo(w)
	}))
	defer srv.Close()
	got, err := fastClient(srv).FetchSnapshot()
	if err != nil {
		t.Fatalf("FetchSnapshot: %v", err)
	}
	if got.NumEdges() != 2 || got.Total() != want.Total() {
		t.Fatalf("snapshot: %d edges, total %v", got.NumEdges(), got.Total())
	}
}

func TestRegisterAndLeaves(t *testing.T) {
	var got LeafStatus
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathRegister:
			if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
				t.Errorf("decode register: %v", err)
			}
			json.NewEncoder(w).Encode(RegisterResponse{Registered: true, Leaves: 1})
		case PathLeaves:
			json.NewEncoder(w).Encode(LeavesResponse{Leaves: []LeafStatus{got}})
		default:
			t.Errorf("unexpected path %q", r.URL.Path)
		}
	}))
	defer srv.Close()
	c := fastClient(srv)
	st := LeafStatus{ID: "leaf-0", Addr: "http://leaf0", Seq: 9, Edges: 2, Weight: 14}
	reg, err := c.Register(st)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !reg.Registered || reg.Leaves != 1 {
		t.Fatalf("reg = %+v", reg)
	}
	ls, err := c.Leaves()
	if err != nil {
		t.Fatalf("Leaves: %v", err)
	}
	if len(ls.Leaves) != 1 || ls.Leaves[0] != st {
		t.Fatalf("leaves = %+v", ls.Leaves)
	}
}
