package opt

import (
	"testing"
	"time"

	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/stats"
	"gocbs/internal/vm"
)

// TestFuseDispatchBoundSpeedup is the fusion acceptance gate: on the
// dispatch-bound subset of the suite, superinstruction fusion must buy
// at least a 10% geomean improvement in wall-clock dispatch throughput
// (Mcyc/s). The subset members were chosen for fusion benefits far
// above the gate (25%+ each measured quiet), so this passes with a
// wide margin even on a loaded machine; measurements are best-of-3
// with fused/unfused runs interleaved to shed scheduler noise.
func TestFuseDispatchBoundSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	subset := bench.DispatchBound()
	if len(subset) == 0 {
		t.Fatal("empty dispatch-bound subset")
	}

	bestOf := func(prog *bytecode.Program, size int64, reps int) time.Duration {
		var best time.Duration
		for rep := 0; rep < reps; rep++ {
			m := vm.New(prog)
			m.MaxSteps = 4_000_000_000
			t0 := time.Now()
			if _, err := m.Run(size); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}

	var ratios []float64
	for _, b := range subset {
		plain, fused := fusedTwin(t, b)
		// Interleave so a load spike hits both sides equally.
		var plainBest, fusedBest time.Duration
		for rep := 0; rep < 3; rep++ {
			if p := bestOf(plain, b.Small, 1); rep == 0 || p < plainBest {
				plainBest = p
			}
			if f := bestOf(fused, b.Small, 1); rep == 0 || f < fusedBest {
				fusedBest = f
			}
		}
		ratio := plainBest.Seconds() / fusedBest.Seconds()
		t.Logf("%-10s unfused %8v fused %8v speedup %+.1f%%",
			b.Name, plainBest.Round(time.Microsecond), fusedBest.Round(time.Microsecond), (ratio-1)*100)
		ratios = append(ratios, ratio)
	}
	geo := stats.GeoMean(ratios)
	t.Logf("geomean dispatch-bound speedup %+.1f%%", (geo-1)*100)
	if geo < 1.10 {
		t.Errorf("dispatch-bound geomean speedup %.1f%% below the 10%% acceptance gate", (geo-1)*100)
	}
}
