package opt

import (
	"bytes"
	"testing"

	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

// diffTimerPeriod mirrors experiment.DefaultTimerPeriod without
// importing the experiment package (which would cycle through opt via
// the adaptive recompiler).
const diffTimerPeriod = 3_000_000

// diffRun executes prog's entry on size under the given profiler (nil
// for bare) and returns the VM for inspection.
func diffRun(t *testing.T, prog *bytecode.Program, size int64, p vm.Profiler, timer uint64) *vm.VM {
	t.Helper()
	m := vm.New(prog)
	m.MaxSteps = 4_000_000_000
	if p != nil {
		m.SetProfiler(p)
	}
	if timer > 0 {
		m.SetTimer(timer)
	}
	if _, err := m.Run(size); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// dcgBytes serializes a DCG canonically, so byte equality is graph
// equality.
func dcgBytes(t *testing.T, g *profile.DCG) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fusedTwin(t *testing.T, b *bench.Benchmark) (plain, fused *bytecode.Program) {
	t.Helper()
	plain, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fused, err = b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	st, err := FuseProgram(fused)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed == 0 {
		t.Fatalf("%s: fusion found nothing to fuse", b.Name)
	}
	return plain, fused
}

// TestFuseDifferentialSuite runs every benchmark of the suite fused and
// unfused under three observers — bare, exhaustive, and a timed CBS
// profiler — and requires byte-identical outputs, identical modeled
// cycle counts, and byte-identical DCGs. This is the gate every
// superinstruction must pass before it may ship: if fusion perturbs
// anything a profiler can see, one of these comparisons breaks.
func TestFuseDifferentialSuite(t *testing.T) {
	suite := bench.All()
	if len(suite) != 15 {
		t.Fatalf("suite has %d benchmarks, want 15", len(suite))
	}
	for _, b := range suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			size := b.Small
			plain, fused := fusedTwin(t, b)

			// Bare: result, output stream, and modeled cycles.
			mp := diffRun(t, plain, size, nil, 0)
			mf := diffRun(t, fused, size, nil, 0)
			if !eqInt64s(mp.Output, mf.Output) {
				t.Fatalf("bare output differs (%d vs %d values)", len(mp.Output), len(mf.Output))
			}
			if mp.Cycles != mf.Cycles {
				t.Fatalf("bare cycles differ: unfused %d, fused %d", mp.Cycles, mf.Cycles)
			}
			if mp.Calls != mf.Calls {
				t.Fatalf("dynamic calls differ: unfused %d, fused %d", mp.Calls, mf.Calls)
			}
			if mf.Instrs >= mp.Instrs {
				t.Errorf("fused executed %d instrs vs %d unfused; fusion had no dynamic effect", mf.Instrs, mp.Instrs)
			}

			// Exhaustive: the ground-truth DCG must be byte-identical.
			ep, ef := profiler.NewExhaustive(), profiler.NewExhaustive()
			diffRun(t, plain, size, ep, 0)
			diffRun(t, fused, size, ef, 0)
			if !bytes.Equal(dcgBytes(t, ep.Graph), dcgBytes(t, ef.Graph)) {
				t.Fatal("exhaustive DCG differs between fused and unfused execution")
			}

			// CBS with a live timer: sampling depends on the exact cycle
			// trajectory, so identical graphs here prove fusion preserves
			// timer phase and yieldpoint placement, not just results.
			for _, fl := range []profiler.Flavour{profiler.FlavourRVM, profiler.FlavourJ9} {
				cfg := profiler.Config{Stride: 3, SamplesPerTick: 16, Flavour: fl, Seed: 7}
				cp, cf := profiler.NewCBS(cfg), profiler.NewCBS(cfg)
				vp, vf := vm.New(plain), vm.New(fused)
				vp.MaxSteps, vf.MaxSteps = 4_000_000_000, 4_000_000_000
				if fl == profiler.FlavourJ9 {
					vp.EpilogueYieldpoints = false
					vf.EpilogueYieldpoints = false
				}
				vp.SetProfiler(cp)
				vf.SetProfiler(cf)
				vp.SetTimer(diffTimerPeriod)
				vf.SetTimer(diffTimerPeriod)
				if _, err := vp.Run(size); err != nil {
					t.Fatal(err)
				}
				if _, err := vf.Run(size); err != nil {
					t.Fatal(err)
				}
				if vp.Cycles != vf.Cycles || vp.ProfilingCycles != vf.ProfilingCycles {
					t.Fatalf("%v: cycles differ: unfused %d/%d, fused %d/%d",
						fl, vp.Cycles, vp.ProfilingCycles, vf.Cycles, vf.ProfilingCycles)
				}
				if cp.SamplesTaken != cf.SamplesTaken {
					t.Fatalf("%v: samples differ: unfused %d, fused %d", fl, cp.SamplesTaken, cf.SamplesTaken)
				}
				if !bytes.Equal(dcgBytes(t, cp.Graph), dcgBytes(t, cf.Graph)) {
					t.Fatalf("%v: CBS DCG differs between fused and unfused execution", fl)
				}
			}
		})
	}
}

// TestFuseCandidateTable exercises each superinstruction candidate in
// isolation: a program tailored to the pattern, executed fused and
// unfused, asserting identical outputs and identical exhaustive edge
// weights.
func TestFuseCandidateTable(t *testing.T) {
	cases := []struct {
		name string
		op   bytecode.Opcode
		src  string
	}{
		{"inclocal", bytecode.OpIncLocal, `
			int main(int n) {
				int acc = 0;
				for (int i = 0; i < n; i = i + 1) { acc = acc + 3; }
				return acc;
			}`},
		{"jumpcmp", bytecode.OpJumpCmp, `
			int main(int n) {
				int hits = 0;
				for (int i = 0; i < n; i = i + 1) {
					if (i > 10) { hits = hits + 1; }
					if (i == 20) { hits = hits + 100; }
				}
				return hits;
			}`},
		{"loadload", bytecode.OpLoadLoad, `
			int f(int a, int b) { return a * b + a - b; }
			int main(int n) {
				int acc = 0;
				for (int i = 0; i < n; i = i + 1) { acc = acc + f(i, acc); }
				return acc;
			}`},
		{"loadconst", bytecode.OpLoadConst, `
			int main(int n) {
				int acc = 1;
				for (int i = 0; i < n; i = i + 1) { acc = acc * 3 % 1000003; }
				return acc;
			}`},
		{"addconst", bytecode.OpAddConst, `
			int main(int n) {
				int acc = 0;
				for (int i = 0; i < n; i = i + 1) { acc = (acc * 2 + 7) % 65537; }
				return acc;
			}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plain := compileMJ(t, tc.src)
			fused := compileMJ(t, tc.src)
			st, err := FuseProgram(fused)
			if err != nil {
				t.Fatal(err)
			}
			if st.Fused[tc.op] == 0 {
				t.Fatalf("pattern did not produce %v:\n%s", tc.op, bytecode.DisasmProgram(fused))
			}
			ep, ef := profiler.NewExhaustive(), profiler.NewExhaustive()
			mp := diffRun(t, plain, 64, ep, 0)
			mf := diffRun(t, fused, 64, ef, 0)
			if !eqInt64s(mp.Output, mf.Output) {
				t.Fatal("output differs")
			}
			if mp.Cycles != mf.Cycles {
				t.Fatalf("cycles differ: %d vs %d", mp.Cycles, mf.Cycles)
			}
			if !bytes.Equal(dcgBytes(t, ep.Graph), dcgBytes(t, ef.Graph)) {
				t.Fatal("DCG edge weights differ")
			}
		})
	}
}

func eqInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
