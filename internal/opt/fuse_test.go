package opt

import (
	"testing"

	"gocbs/internal/bytecode"
	"gocbs/internal/vm"
)

// countOps returns how many instructions of the method have the opcode.
func countOps(m *bytecode.Method, op bytecode.Opcode) int {
	n := 0
	for _, ins := range m.Code {
		if ins.Op == op {
			n++
		}
	}
	return n
}

func TestFuseIncLocal(t *testing.T) {
	// acc = acc + 5 in a counted loop; both the accumulator bump and
	// the induction-variable bump must fuse to inclocal.
	src := `
		int main(int n) {
			int acc = 0;
			for (int i = 0; i < n; i = i + 1) {
				acc = acc + 5;
			}
			return acc;
		}
	`
	plain := compileMJ(t, src)
	wantR, _, wantInstrs := runP(t, plain, 100)

	fused := compileMJ(t, src)
	st, err := FuseProgram(fused)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fused[bytecode.OpIncLocal] < 2 {
		t.Errorf("fused %d inclocal, want >= 2:\n%s",
			st.Fused[bytecode.OpIncLocal], bytecode.DisasmProgram(fused))
	}
	gotR, _, gotInstrs := runP(t, fused, 100)
	if gotR != wantR {
		t.Errorf("main(100) = %d fused, %d unfused", gotR, wantR)
	}
	if gotInstrs >= wantInstrs {
		t.Errorf("fused run executed %d instrs, unfused %d; expected a reduction", gotInstrs, wantInstrs)
	}
}

func TestFuseCyclesIdentical(t *testing.T) {
	src := `
		int f(int x) { return x * 3 - 4; }
		int main(int n) {
			int acc = 0;
			for (int i = 0; i < n; i = i + 1) {
				if (acc > 1000) { acc = acc - 1000; }
				acc = acc + f(i) + 2;
			}
			return acc;
		}
	`
	plain := compileMJ(t, src)
	mp := vm.New(plain)
	rp, err := mp.Run(300)
	if err != nil {
		t.Fatal(err)
	}

	fused := compileMJ(t, src)
	if _, err := FuseProgram(fused); err != nil {
		t.Fatal(err)
	}
	mf := vm.New(fused)
	rf, err := mf.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if rf.I != rp.I {
		t.Errorf("result %d fused vs %d unfused", rf.I, rp.I)
	}
	if mf.Cycles != mp.Cycles {
		t.Errorf("modeled cycles differ: %d fused vs %d unfused", mf.Cycles, mp.Cycles)
	}
	if mf.Calls != mp.Calls {
		t.Errorf("dynamic calls differ: %d fused vs %d unfused", mf.Calls, mp.Calls)
	}
}

func TestFuseBlockedByBranchTarget(t *testing.T) {
	// A branch lands between Load and Const: the pair must not fuse.
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 1)
	l := f.NewLabel()
	f.Emit(bytecode.OpLoad, 0)
	f.Bind(l) // interior of the would-be window is a join point
	f.Const(1)
	f.Emit(bytecode.OpAdd)
	f.Emit(bytecode.OpDup)
	f.Const(10)
	f.Emit(bytecode.OpLt)
	f.Branch(bytecode.OpJumpNZ, l)
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	wantR, _, _ := runP(t, p, 0)

	if _, err := FuseMethod(p, p.Entry); err != nil {
		t.Fatal(err)
	}
	// The Load;Const window straddling the label must survive unfused.
	if got := countOps(p.Entry, bytecode.OpLoadConst); got != 0 {
		t.Errorf("loadconst fused across a branch target:\n%s", bytecode.DisasmMethod(p, p.Entry))
	}
	// The Lt;JumpNZ pair is fair game and keeps the loop correct.
	if got := countOps(p.Entry, bytecode.OpJumpCmp); got != 1 {
		t.Errorf("jumpcmp count = %d, want 1:\n%s", got, bytecode.DisasmMethod(p, p.Entry))
	}
	gotR, _, _ := runP(t, p, 0)
	if gotR != wantR {
		t.Errorf("main(0) = %d fused, %d unfused", gotR, wantR)
	}
}

func TestFuseIncLocalRequiresSameLocal(t *testing.T) {
	// Load x; Const; Add; Store y (y != x) must not fuse to inclocal.
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 1)
	y := f.AllocLocal()
	f.Emit(bytecode.OpLoad, 0)
	f.Const(7)
	f.Emit(bytecode.OpAdd)
	f.Emit(bytecode.OpStore, int32(y))
	f.Emit(bytecode.OpLoad, int32(y))
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FuseMethod(p, p.Entry); err != nil {
		t.Fatal(err)
	}
	if got := countOps(p.Entry, bytecode.OpIncLocal); got != 0 {
		t.Errorf("inclocal fused across different locals:\n%s", bytecode.DisasmMethod(p, p.Entry))
	}
	if v, _, _ := runP(t, p, 35); v != 42 {
		t.Errorf("main(35) = %d, want 42", v)
	}
}

func TestFuseJumpCmpNegation(t *testing.T) {
	// if (a <= b) via JumpZ must negate to a JumpCmp on Gt.
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 2)
	other := f.NewLabel()
	f.Emit(bytecode.OpLoad, 0)
	f.Emit(bytecode.OpLoad, 1)
	f.Emit(bytecode.OpLe)
	f.Branch(bytecode.OpJumpZ, other)
	f.Const(1)
	f.Emit(bytecode.OpReturn)
	f.Bind(other)
	f.Const(0)
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FuseMethod(p, p.Entry); err != nil {
		t.Fatal(err)
	}
	var cmp bytecode.Opcode
	for _, ins := range p.Entry.Code {
		if ins.Op == bytecode.OpJumpCmp {
			cmp = bytecode.Opcode(ins.B)
		}
	}
	if cmp != bytecode.OpGt {
		t.Errorf("fused comparison = %v, want gt:\n%s", cmp, bytecode.DisasmMethod(p, p.Entry))
	}
	for _, tc := range []struct{ a, b, want int64 }{
		{1, 2, 1}, {2, 2, 1}, {3, 2, 0},
	} {
		if v, _, _ := runP(t, p, tc.a, tc.b); v != tc.want {
			t.Errorf("main(%d,%d) = %d, want %d", tc.a, tc.b, v, tc.want)
		}
	}
}

func TestFuseSubToAddConst(t *testing.T) {
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 1)
	f.Emit(bytecode.OpLoad, 0)
	f.Const(8)
	f.Emit(bytecode.OpSub)
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FuseMethod(p, p.Entry); err != nil {
		t.Fatal(err)
	}
	// Load;Const wins the window greedily, so Sub survives here — but a
	// bare Const;Sub (stack already loaded) must become addconst(-8).
	// Rebuild without the leading load to exercise it.
	pb2 := bytecode.NewProgramBuilder()
	g := pb2.NewFunc("main", 1)
	g.Emit(bytecode.OpLoad, 0)
	g.Emit(bytecode.OpDup)
	g.Emit(bytecode.OpPop)
	g.Const(8)
	g.Emit(bytecode.OpSub)
	g.Emit(bytecode.OpReturn)
	pb2.SetEntry(g)
	p2, err := pb2.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FuseMethod(p2, p2.Entry); err != nil {
		t.Fatal(err)
	}
	if got := countOps(p2.Entry, bytecode.OpAddConst); got != 1 {
		t.Errorf("addconst count = %d, want 1:\n%s", got, bytecode.DisasmMethod(p2, p2.Entry))
	}
	if v, _, _ := runP(t, p2, 50); v != 42 {
		t.Errorf("main(50) = %d, want 42", v)
	}
}

func TestFuseIdempotent(t *testing.T) {
	src := `
		int main(int n) {
			int acc = 0;
			for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
			return acc;
		}
	`
	p := compileMJ(t, src)
	if _, err := FuseProgram(p); err != nil {
		t.Fatal(err)
	}
	st, err := FuseProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 0 {
		t.Errorf("second fusion removed %d more instructions; pass is not a fixpoint", st.Removed)
	}
}

func TestFusePreservesPreexistingNops(t *testing.T) {
	// A reachable nop carries a modeled cycle; fusion must not delete it.
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 1)
	f.Emit(bytecode.OpNop)
	f.Emit(bytecode.OpLoad, 0)
	f.Const(2)
	f.Emit(bytecode.OpAdd)
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FuseMethod(p, p.Entry); err != nil {
		t.Fatal(err)
	}
	if got := countOps(p.Entry, bytecode.OpNop); got != 1 {
		t.Errorf("nop count = %d after fusion, want 1:\n%s", got, bytecode.DisasmMethod(p, p.Entry))
	}
}
