// Package opt implements a peephole/cleanup optimizer for MJ VM
// bytecode. It is the tidy-up pass a JIT would run after inlining:
// constant folding, jump threading, branch simplification, nop
// removal, and unreachable-code elimination. The pass is semantics
// preserving (the differential tests run it over randomly generated
// programs) and is offered as an opt-in ablation on top of the paper's
// pipeline — the published experiment numbers run without it.
package opt

import (
	"fmt"

	"gocbs/internal/bytecode"
)

// Cleanup optimizes one method in place until a fixpoint (bounded),
// re-verifying the result. It returns the number of instructions
// removed.
func Cleanup(p *bytecode.Program, m *bytecode.Method) (int, error) {
	before := len(m.Code)
	for pass := 0; pass < 8; pass++ {
		changed := foldConstants(m)
		changed = threadJumps(m) || changed
		changed = simplifyBranches(m) || changed
		removed, err := eliminateDead(p, m)
		if err != nil {
			return 0, err
		}
		if !changed && removed == 0 {
			break
		}
	}
	m.Size = len(m.Code)
	if err := bytecode.Verify(p, m); err != nil {
		return 0, fmt.Errorf("cleanup broke %s: %w", m.Name, err)
	}
	return before - len(m.Code), nil
}

// CleanupProgram runs Cleanup over every method.
func CleanupProgram(p *bytecode.Program) (int, error) {
	total := 0
	for _, m := range p.Methods {
		n, err := Cleanup(p, m)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// jumpTargets returns whether each pc is a branch target (needed to
// know when a straight-line window is safe to rewrite).
func jumpTargets(m *bytecode.Method) []bool {
	t := make([]bool, len(m.Code)+1)
	for _, ins := range m.Code {
		if ins.Op.IsBranch() {
			t[ins.A] = true
		}
	}
	return t
}

// foldConstants rewrites Const a; Const b; <binop> windows into a
// single Const when the result fits an int32 operand, replacing the
// first two instructions with nops (removed later by eliminateDead).
// Windows whose interior is a branch target are left alone.
func foldConstants(m *bytecode.Method) bool {
	targets := jumpTargets(m)
	changed := false
	for pc := 0; pc+2 < len(m.Code); pc++ {
		a, b, op := m.Code[pc], m.Code[pc+1], m.Code[pc+2]
		if a.Op != bytecode.OpConst || b.Op != bytecode.OpConst {
			continue
		}
		if targets[pc+1] || targets[pc+2] {
			continue
		}
		x, y := int64(a.A), int64(b.A)
		var v int64
		switch op.Op {
		case bytecode.OpAdd:
			v = x + y
		case bytecode.OpSub:
			v = x - y
		case bytecode.OpMul:
			v = x * y
		case bytecode.OpAnd:
			v = x & y
		case bytecode.OpOr:
			v = x | y
		case bytecode.OpXor:
			v = x ^ y
		case bytecode.OpShl:
			v = x << (uint64(y) & 63)
		case bytecode.OpShr:
			v = x >> (uint64(y) & 63)
		case bytecode.OpDiv:
			if y == 0 {
				continue // preserve the trap
			}
			v = x / y
		case bytecode.OpRem:
			if y == 0 {
				continue
			}
			v = x % y
		case bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe:
			var t bool
			switch op.Op {
			case bytecode.OpEq:
				t = x == y
			case bytecode.OpNe:
				t = x != y
			case bytecode.OpLt:
				t = x < y
			case bytecode.OpLe:
				t = x <= y
			case bytecode.OpGt:
				t = x > y
			default:
				t = x >= y
			}
			v = 0
			if t {
				v = 1
			}
		default:
			continue
		}
		if int64(int32(v)) != v {
			continue
		}
		m.Code[pc] = bytecode.Instr{Op: bytecode.OpNop}
		m.Code[pc+1] = bytecode.Instr{Op: bytecode.OpNop}
		m.Code[pc+2] = bytecode.Instr{Op: bytecode.OpConst, A: int32(v)}
		changed = true
	}
	return changed
}

// threadJumps retargets branches that point at unconditional jumps.
func threadJumps(m *bytecode.Method) bool {
	changed := false
	final := func(start int32) int32 {
		seen := 0
		t := start
		for int(t) < len(m.Code) && m.Code[t].Op == bytecode.OpJump && seen < 16 {
			nt := m.Code[t].A
			if nt == t {
				break // self-loop
			}
			t = nt
			seen++
		}
		return t
	}
	for pc := range m.Code {
		if !m.Code[pc].Op.IsBranch() {
			continue
		}
		if nt := final(m.Code[pc].A); nt != m.Code[pc].A {
			m.Code[pc].A = nt
			changed = true
		}
	}
	return changed
}

// simplifyBranches removes branches to the immediately following
// instruction and folds constant conditions.
func simplifyBranches(m *bytecode.Method) bool {
	targets := jumpTargets(m)
	changed := false
	for pc := range m.Code {
		ins := m.Code[pc]
		switch ins.Op {
		case bytecode.OpJump:
			if int(ins.A) == pc+1 {
				m.Code[pc] = bytecode.Instr{Op: bytecode.OpNop}
				changed = true
			}
		case bytecode.OpJumpZ, bytecode.OpJumpNZ:
			// Const c; JumpZ/NZ -> Jump or fallthrough.
			if pc > 0 && m.Code[pc-1].Op == bytecode.OpConst && !targets[pc] {
				c := m.Code[pc-1].A
				taken := (c == 0) == (ins.Op == bytecode.OpJumpZ)
				m.Code[pc-1] = bytecode.Instr{Op: bytecode.OpNop}
				if taken {
					m.Code[pc] = bytecode.Instr{Op: bytecode.OpJump, A: ins.A}
				} else {
					m.Code[pc] = bytecode.Instr{Op: bytecode.OpNop}
				}
				changed = true
			}
		}
	}
	return changed
}

// eliminateDead removes nops and unreachable instructions, relaying
// out the method and retargeting every branch.
func eliminateDead(p *bytecode.Program, m *bytecode.Method) (int, error) {
	code := m.Code
	reach := make([]bool, len(code))
	var work []int
	push := func(pc int) {
		if pc >= 0 && pc < len(code) && !reach[pc] {
			reach[pc] = true
			work = append(work, pc)
		}
	}
	push(0)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		ins := code[pc]
		switch {
		case ins.Op.IsReturn(), ins.Op == bytecode.OpHalt:
		case ins.Op == bytecode.OpJump:
			push(int(ins.A))
		case ins.Op.IsCondBranch():
			push(int(ins.A))
			push(pc + 1)
		default:
			push(pc + 1)
		}
	}

	// An instruction survives if it is reachable and not a nop — except
	// that a reachable nop that is a branch target of a surviving
	// branch must... simpler: keep a mapping old->new where removed
	// instructions map to the next surviving pc.
	keep := make([]bool, len(code))
	n := 0
	for pc, ins := range code {
		keep[pc] = reach[pc] && ins.Op != bytecode.OpNop
		if keep[pc] {
			n++
		}
	}
	if n == len(code) {
		return 0, nil
	}
	if n == 0 {
		return 0, fmt.Errorf("cleanup would delete entire body of %s", m.Name)
	}
	newPC := make([]int32, len(code)+1)
	cur := int32(0)
	for pc := range code {
		newPC[pc] = cur
		if keep[pc] {
			cur++
		}
	}
	newPC[len(code)] = cur

	out := make([]bytecode.Instr, 0, n)
	for pc, ins := range code {
		if !keep[pc] {
			continue
		}
		if ins.Op.IsBranch() {
			ins.A = newPC[ins.A]
		}
		out = append(out, ins)
	}
	// The body must still end in a terminal instruction; if the old
	// last instruction was removed as a nop, the verifier will complain
	// — guard by appending nothing and letting Verify catch issues.
	m.Code = out
	return len(code) - n, nil
}
