package opt

import (
	"fmt"
	"testing"

	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/mj"
)

// closureSites collects every closure instruction with its operands —
// (method, pc-order, op, A, B). Site IDs live in OpCallClosure.B and
// lambda method IDs in OpMakeClosure.A, so an identical multiset
// before and after fusion means profiles collected on fused code stay
// comparable edge-for-edge with unfused profiles.
func closureSites(p *bytecode.Program) []string {
	var out []string
	for _, m := range p.Methods {
		n := 0
		for _, ins := range m.Code {
			if ins.Op == bytecode.OpMakeClosure || ins.Op == bytecode.OpCallClosure {
				out = append(out, fmt.Sprintf("%s#%d %s %d %d", m.Name, n, ins.Op, ins.A, ins.B))
				n++
			}
		}
	}
	return out
}

// TestFuseNeverCrossesClosureCalls: superinstruction fusion must treat
// OpMakeClosure and OpCallClosure as barriers — every closure
// instruction survives fusion with operands (lambda target, arity,
// site ID) intact, on both checked-in closure benchmarks and a sweep
// of generated closure-heavy programs. The test also requires fusion
// to remove something, so the barrier is proven against a pass that
// genuinely ran.
func TestFuseNeverCrossesClosureCalls(t *testing.T) {
	var progs []*bytecode.Program
	var labels []string
	for _, name := range []string{"closures", "phases"} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("benchmark %s missing", name)
		}
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, prog)
		labels = append(labels, "bench:"+name)
	}
	for seed := int64(0); seed < 8; seed++ {
		src := mj.GenerateShaped(seed, 3, mj.ShapeClosureHeavy)
		prog, err := mj.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		progs = append(progs, prog)
		labels = append(labels, fmt.Sprintf("gen:seed=%d", seed))
	}

	for i, prog := range progs {
		before := closureSites(prog)
		if len(before) == 0 {
			t.Errorf("%s: no closure instructions to protect", labels[i])
			continue
		}
		st, err := FuseProgram(prog)
		if err != nil {
			t.Fatalf("%s: fuse: %v", labels[i], err)
		}
		if st.Removed == 0 {
			t.Errorf("%s: fusion removed nothing; barrier untested", labels[i])
		}
		after := closureSites(prog)
		if len(after) != len(before) {
			t.Fatalf("%s: fusion changed closure instruction count %d -> %d", labels[i], len(before), len(after))
		}
		for j := range before {
			if before[j] != after[j] {
				t.Errorf("%s: closure instruction rewritten by fusion:\n  before %s\n  after  %s", labels[i], before[j], after[j])
			}
		}
	}
}
