package opt

import (
	"testing"

	"gocbs/internal/bytecode"
	"gocbs/internal/inline"
	"gocbs/internal/mj"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

func compileMJ(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, err := mj.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func runP(t *testing.T, p *bytecode.Program, args ...int64) (int64, []int64, uint64) {
	t.Helper()
	m := vm.New(p)
	m.MaxSteps = 50_000_000
	v, err := m.Run(args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v.I, m.Output, m.Instrs
}

func TestFoldConstants(t *testing.T) {
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 0)
	f.Const(6)
	f.Const(7)
	f.Emit(bytecode.OpMul)
	f.Const(2)
	f.Emit(bytecode.OpAdd)
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	removed, err := Cleanup(p, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if removed < 2 {
		t.Errorf("removed %d instructions, want at least 2", removed)
	}
	v, _, _ := runP(t, p)
	if v != 44 {
		t.Errorf("result = %d, want 44", v)
	}
	// The whole computation should have folded to a single constant.
	if len(p.Entry.Code) != 2 {
		t.Errorf("code = %d instructions, want 2 (const, return):\n%s",
			len(p.Entry.Code), bytecode.DisasmMethod(p, p.Entry))
	}
}

func TestFoldPreservesDivByZeroTrap(t *testing.T) {
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 0)
	f.Const(5)
	f.Const(0)
	f.Emit(bytecode.OpDiv)
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cleanup(p, p.Entry); err != nil {
		t.Fatal(err)
	}
	m := vm.New(p)
	if _, err := m.Run(); err == nil {
		t.Fatal("division by zero must still trap after cleanup")
	}
}

func TestJumpThreadingAndDeadCode(t *testing.T) {
	pb := bytecode.NewProgramBuilder()
	f := pb.NewFunc("main", 1)
	l1 := f.NewLabel()
	l2 := f.NewLabel()
	end := f.NewLabel()
	f.Emit(bytecode.OpLoad, 0)
	f.Branch(bytecode.OpJumpZ, l1)
	f.Const(1)
	f.Branch(bytecode.OpJump, end)
	f.Bind(l1)
	f.Branch(bytecode.OpJump, l2) // jump-to-jump
	f.Emit(bytecode.OpNop)        // unreachable
	f.Emit(bytecode.OpNop)
	f.Bind(l2)
	f.Const(2)
	f.Branch(bytecode.OpJump, end)
	f.Bind(end)
	f.Emit(bytecode.OpReturn)
	pb.SetEntry(f)
	p, err := pb.Link()
	if err != nil {
		t.Fatal(err)
	}
	before := len(p.Entry.Code)
	removed, err := Cleanup(p, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Errorf("expected dead/threaded instructions to be removed (body was %d)", before)
	}
	if v, _, _ := runP(t, p, 0); v != 2 {
		t.Errorf("main(0) = %d, want 2", v)
	}
	if v, _, _ := runP(t, p, 9); v != 1 {
		t.Errorf("main(9) = %d, want 1", v)
	}
}

func TestCleanupOnInlinedBenchmarks(t *testing.T) {
	// Cleanup after inlining must preserve behaviour and shrink code.
	src := `
		class Op { int apply(int x) { return x + 1; } }
		class Twice extends Op { int apply(int x) { return x * 2; } }
		int helper(int x) { return (2 + 3) * x; }
		int main(int n) {
			Op o = new Twice();
			int acc = 0;
			for (int i = 0; i < n; i = i + 1) {
				acc = acc + o.apply(i) + helper(i);
			}
			return acc;
		}
	`
	plain := compileMJ(t, src)
	wantR, wantO, _ := runP(t, plain, 500)

	optd := compileMJ(t, src)
	e := profiler.NewExhaustive()
	mm := vm.New(optd)
	mm.SetProfiler(e)
	if _, err := mm.Run(500); err != nil {
		t.Fatal(err)
	}
	if _, err := inline.Optimize(optd, inline.NewNewLinear(), e.Graph, inline.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	sizeBefore := optd.TotalCodeSize()
	removed, err := CleanupProgram(optd)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("cleanup found nothing to remove after inlining")
	}
	if optd.TotalCodeSize() >= sizeBefore {
		t.Error("cleanup did not shrink the program")
	}
	gotR, gotO, _ := runP(t, optd, 500)
	if gotR != wantR || len(gotO) != len(wantO) {
		t.Fatalf("cleanup changed behaviour: %d vs %d", gotR, wantR)
	}
}

// TestDifferentialCleanupOnGeneratedPrograms fuzzes the optimizer: for
// random programs, cleanup after inlining must not change results.
func TestDifferentialCleanupOnGeneratedPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := int64(900); seed < int64(900+n); seed++ {
		src := mj.GenerateProgram(seed, 3)
		arg := seed % 71
		plain := compileMJ(t, src)
		wantR, wantO, _ := runP(t, plain, arg)

		optd := compileMJ(t, src)
		if _, err := inline.Optimize(optd, inline.NewJ9Static(), nil, inline.DefaultOptions()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := CleanupProgram(optd); err != nil {
			t.Fatalf("seed %d: cleanup: %v\n%s", seed, err, src)
		}
		gotR, gotO, _ := runP(t, optd, arg)
		if gotR != wantR || len(gotO) != len(wantO) {
			t.Fatalf("seed %d: cleanup changed behaviour (%d vs %d)\n%s", seed, gotR, wantR, src)
		}
		for i := range wantO {
			if gotO[i] != wantO[i] {
				t.Fatalf("seed %d: output[%d] differs\n%s", seed, i, src)
			}
		}
	}
}

func TestCleanupIdempotent(t *testing.T) {
	src := mj.GenerateProgram(42, 3)
	p := compileMJ(t, src)
	if _, err := inline.Optimize(p, inline.NewJ9Static(), nil, inline.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := CleanupProgram(p); err != nil {
		t.Fatal(err)
	}
	again, err := CleanupProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("second cleanup removed %d more instructions; pass is not a fixpoint", again)
	}
}
