// Superinstruction fusion: the dispatch-loop half of the perf
// trajectory work. The interpreter pays a fixed Go-level overhead per
// dispatched instruction (bounds check, step accounting, cost lookup,
// timer poll, switch); fusing the hottest adjacent pairs from the
// peephole window catalogue into single fused opcodes removes that
// overhead without changing anything a profiler can observe.
//
// The selection rule is static and deliberately conservative: a window
// is fused only when (a) every instruction matches one of the five
// catalogued patterns exactly, (b) no interior pc is a branch target,
// and (c) the window contains no call, return, yieldpoint, or
// allocation — so a fused program executes the identical sequence of
// observable events (calls, yieldpoints, timer ticks, traps, output)
// at the identical modeled cycle counts as its unfused twin. The
// differential tests in fuse_differential_test.go enforce exactly that
// on all thirteen benchmarks.
package opt

import (
	"fmt"
	"math"

	"gocbs/internal/bytecode"
)

// FuseStats reports what one fusion pass did.
type FuseStats struct {
	// Fused counts emitted superinstructions by opcode.
	Fused map[bytecode.Opcode]int
	// Removed is the net number of instructions eliminated.
	Removed int
}

// Fuse rewrites m in place, collapsing catalogued adjacent instruction
// windows into superinstructions and compacting the body. It returns
// the number of instructions eliminated. Fusion assumes the summed-cost
// identities DefaultCostModel establishes for the fused opcodes; a
// custom cost model that breaks them would skew fused timer phase.
func Fuse(p *bytecode.Program, m *bytecode.Method) (int, error) {
	st, err := FuseMethod(p, m)
	if err != nil {
		return 0, err
	}
	return st.Removed, nil
}

// FuseMethod is Fuse with per-opcode statistics.
func FuseMethod(p *bytecode.Program, m *bytecode.Method) (FuseStats, error) {
	st := FuseStats{Fused: map[bytecode.Opcode]int{}}
	code := m.Code
	targets := jumpTargets(m)
	dead := make([]bool, len(code))

	// interiorFree reports whether the window (pc, pc+n] can be
	// swallowed into a superinstruction at pc: entering the window
	// anywhere but its head must be impossible.
	interiorFree := func(pc, n int) bool {
		for i := pc + 1; i <= pc+n; i++ {
			if targets[i] {
				return false
			}
		}
		return true
	}

	for pc := 0; pc < len(code); pc++ {
		ins := code[pc]

		// Load x; Const c; Add; Store x  ->  IncLocal x, c
		if pc+3 < len(code) && ins.Op == bytecode.OpLoad &&
			code[pc+1].Op == bytecode.OpConst &&
			code[pc+2].Op == bytecode.OpAdd &&
			code[pc+3].Op == bytecode.OpStore && code[pc+3].A == ins.A &&
			interiorFree(pc, 3) {
			code[pc] = bytecode.Instr{Op: bytecode.OpIncLocal, A: ins.A, B: code[pc+1].A}
			dead[pc+1], dead[pc+2], dead[pc+3] = true, true, true
			st.Fused[bytecode.OpIncLocal]++
			pc += 3
			continue
		}

		if pc+1 >= len(code) || !interiorFree(pc, 1) {
			continue
		}
		next := code[pc+1]
		switch {
		// <cmp>; JumpNZ t -> JumpCmp <cmp> t;  <cmp>; JumpZ t -> JumpCmp <negated cmp> t
		case ins.Op.IsCmp() && (next.Op == bytecode.OpJumpNZ || next.Op == bytecode.OpJumpZ):
			cmp := ins.Op
			if next.Op == bytecode.OpJumpZ {
				cmp = bytecode.NegateCmp(cmp)
			}
			code[pc] = bytecode.Instr{Op: bytecode.OpJumpCmp, A: next.A, B: int32(cmp)}
			dead[pc+1] = true
			st.Fused[bytecode.OpJumpCmp]++
			pc++
		// Load a; Load b -> LoadLoad a, b
		case ins.Op == bytecode.OpLoad && next.Op == bytecode.OpLoad:
			code[pc] = bytecode.Instr{Op: bytecode.OpLoadLoad, A: ins.A, B: next.A}
			dead[pc+1] = true
			st.Fused[bytecode.OpLoadLoad]++
			pc++
		// Load a; Const c -> LoadConst a, c
		case ins.Op == bytecode.OpLoad && next.Op == bytecode.OpConst:
			code[pc] = bytecode.Instr{Op: bytecode.OpLoadConst, A: ins.A, B: next.A}
			dead[pc+1] = true
			st.Fused[bytecode.OpLoadConst]++
			pc++
		// Const c; Add -> AddConst c;  Const c; Sub -> AddConst -c
		case ins.Op == bytecode.OpConst && next.Op == bytecode.OpAdd:
			code[pc] = bytecode.Instr{Op: bytecode.OpAddConst, A: ins.A}
			dead[pc+1] = true
			st.Fused[bytecode.OpAddConst]++
			pc++
		case ins.Op == bytecode.OpConst && next.Op == bytecode.OpSub && ins.A != math.MinInt32:
			code[pc] = bytecode.Instr{Op: bytecode.OpAddConst, A: -ins.A}
			dead[pc+1] = true
			st.Fused[bytecode.OpAddConst]++
			pc++
		}
	}

	// Compact: drop only the slots swallowed by fusion (pre-existing
	// nops keep their modeled cost, so they must survive), remapping
	// every branch target through the monotone old->new pc map.
	n := 0
	for pc := range code {
		if !dead[pc] {
			n++
		}
	}
	if n == len(code) {
		return st, nil
	}
	newPC := make([]int32, len(code)+1)
	cur := int32(0)
	for pc := range code {
		newPC[pc] = cur
		if !dead[pc] {
			cur++
		}
	}
	newPC[len(code)] = cur
	out := make([]bytecode.Instr, 0, n)
	for pc, ins := range code {
		if dead[pc] {
			continue
		}
		if ins.Op.IsBranch() {
			ins.A = newPC[ins.A]
		}
		out = append(out, ins)
	}
	m.Code = out
	m.Size = len(out)
	st.Removed = len(code) - n
	if err := bytecode.Verify(p, m); err != nil {
		return st, fmt.Errorf("fusion broke %s: %w", m.Name, err)
	}
	return st, nil
}

// FuseProgram fuses every method, returning summed statistics.
func FuseProgram(p *bytecode.Program) (FuseStats, error) {
	total := FuseStats{Fused: map[bytecode.Opcode]int{}}
	for _, m := range p.Methods {
		st, err := FuseMethod(p, m)
		if err != nil {
			return total, err
		}
		total.Removed += st.Removed
		for op, c := range st.Fused {
			total.Fused[op] += c
		}
	}
	return total, nil
}
