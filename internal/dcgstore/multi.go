package dcgstore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gocbs/internal/api"
	"gocbs/internal/bytecode"
	"gocbs/internal/profile"
)

// Per-(program, version) aggregation.
//
// A Store merges every delta it is fed into one graph, which is exactly
// the silent-corruption bug the content-addressed version identity
// exists to fix: two builds pushed under one program name alias each
// other's edge IDs — method 17 in build A is not method 17 in build B —
// and the merged aggregate is garbage that still looks plausible. A
// Multi keeps one substore per api.ProgramKey so each build's profile
// is internally consistent, plus a default substore for unstamped
// legacy pushes (the pre-versioning behaviour, preserved bit-for-bit).
//
// When a new version of a program registers its manifest, edges whose
// caller, callee, and call-site owner all have unchanged method bodies
// are carried forward from the previous version's graph into the new
// one (with IDs remapped), KRAB-style: a rolling upgrade starts from
// the profile mass that is still valid instead of from zero.

// MaxProgramKeys bounds how many (program, version) substores a Multi
// will create; a hostile pusher inventing version strings must not be
// able to grow server memory without bound. Creation past the cap is
// refused (the daemon answers 503 capacity).
const MaxProgramKeys = 256

// Multi is a set of Stores keyed by (program, version), plus a default
// Store for unkeyed pushes. Safe for concurrent use.
type Multi struct {
	def    *Store
	shards int

	mu        sync.RWMutex
	subs      map[api.ProgramKey]*Store
	manifests map[api.ProgramKey]*bytecode.Manifest
	// manifestOrder keeps registration order — succession matters when
	// manifests are relayed upstream (a root registering v2 before v1
	// would get the carry-forward direction wrong).
	manifestOrder []api.ProgramKey
	carried       map[api.ProgramKey]*profile.DCG
	latest        map[string]string // program -> most recently registered version
	// touched records the last write-path access (push-side For,
	// manifest registration) per substore; EvictRetired uses it to find
	// versions the fleet has moved off of. Read paths do not touch —
	// the merged snapshot visits every key and would pin retired
	// versions forever.
	touched map[api.ProgramKey]time.Time
	evicted uint64
	now     func() time.Time
}

// NewMulti returns a Multi whose substores (including the default) use
// at least shards shards.
func NewMulti(shards int) *Multi {
	return NewMultiWithDefault(New(shards), shards)
}

// NewMultiWithDefault wraps an existing Store as the default substore —
// the migration path for callers (daemon.NewInProcess) that built their
// Store first.
func NewMultiWithDefault(def *Store, shards int) *Multi {
	return &Multi{
		def:       def,
		shards:    shards,
		subs:      make(map[api.ProgramKey]*Store),
		manifests: make(map[api.ProgramKey]*bytecode.Manifest),
		carried:   make(map[api.ProgramKey]*profile.DCG),
		latest:    make(map[string]string),
		touched:   make(map[api.ProgramKey]time.Time),
		now:       time.Now,
	}
}

// Default returns the substore unstamped pushes land in.
func (m *Multi) Default() *Store { return m.def }

// validKey bounds wire-supplied key components. Program names are
// fully validated at the daemon layer (plan.ValidProgramName); here we
// enforce only what keeps the key maps and persistence file names
// sound.
func validKey(key api.ProgramKey) bool {
	if key.Program == "" || len(key.Program) > 64 {
		return false
	}
	for i := 0; i < len(key.Program); i++ {
		if key.Program[i] == '@' || key.Program[i] == '/' {
			return false
		}
	}
	return api.ValidProgramVersion(key.Version)
}

// Lookup returns the substore for key, or nil if it does not exist.
// The zero key names the default substore.
func (m *Multi) Lookup(key api.ProgramKey) *Store {
	if key.IsZero() {
		return m.def
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.subs[key]
}

// For returns the substore for key, creating it on first use. Returns
// nil when the key is malformed or the substore ledger is full.
func (m *Multi) For(key api.ProgramKey) *Store {
	if key.IsZero() {
		return m.def
	}
	if !validKey(key) {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forLocked(key)
}

func (m *Multi) forLocked(key api.ProgramKey) *Store {
	if s := m.subs[key]; s != nil {
		m.touched[key] = m.now()
		return s
	}
	if len(m.subs) >= MaxProgramKeys {
		return nil
	}
	s := New(m.shards)
	m.subs[key] = s
	m.touched[key] = m.now()
	if m.latest[key.Program] == "" {
		// First sighting of this program establishes succession; a
		// manifest registration for a newer build will advance it.
		m.latest[key.Program] = key.Version
	}
	return s
}

// Keys lists the live (program, version) keys in canonical order.
func (m *Multi) Keys() []api.ProgramKey {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]api.ProgramKey, 0, len(m.subs))
	for k := range m.subs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// NumKeys returns the number of live (program, version) substores.
func (m *Multi) NumKeys() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.subs)
}

// LatestVersion returns the most recent version registered (or first
// pushed) for program, "" when the program is unknown.
func (m *Multi) LatestVersion(program string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.latest[program]
}

// Manifest returns the registered manifest for key, nil when none.
func (m *Multi) Manifest(key api.ProgramKey) *bytecode.Manifest {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.manifests[key]
}

// Manifests returns the registered manifests keyed by (program,
// version). Manifests are immutable once registered, so sharing the
// pointers is safe.
func (m *Multi) Manifests() map[api.ProgramKey]*bytecode.Manifest {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[api.ProgramKey]*bytecode.Manifest, len(m.manifests))
	for k, v := range m.manifests {
		out[k] = v
	}
	return out
}

// ManifestsInOrder returns the registered manifests in registration
// order — what a federation leaf relays upstream so the root registers
// builds in the same succession and its carry-forward runs the same
// direction. (After a restore the order is the checkpoint index's
// canonical key order; the relay sent-set persists separately, so only
// never-relayed manifests are affected.)
func (m *Multi) ManifestsInOrder() []*bytecode.Manifest {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*bytecode.Manifest, 0, len(m.manifestOrder))
	for _, k := range m.manifestOrder {
		if man := m.manifests[k]; man != nil {
			out = append(out, man)
		}
	}
	return out
}

// Carried returns a copy of the graph carried forward into key's
// substore when it was registered (nil when nothing was carried). The
// per-version conservation invariant is: substore snapshot == carried
// graph + the exact sum of acknowledged deltas.
func (m *Multi) Carried(key api.ProgramKey) *profile.DCG {
	m.mu.RLock()
	g := m.carried[key]
	m.mu.RUnlock()
	if g == nil {
		return nil
	}
	return g.Clone()
}

// RegisterManifest records one build's method/site manifest and, when a
// predecessor version of the same program has a registered manifest,
// carries its still-valid profile edges into the new version's
// substore. Idempotent: re-registering a (program, version) already on
// file acknowledges without re-carrying (so an at-least-once client
// cannot double the carried weight).
func (m *Multi) RegisterManifest(man *bytecode.Manifest) (carriedEdges int, carriedWeight float64, err error) {
	key := api.ProgramKey{Program: man.Program, Version: man.Version}
	if !validKey(key) {
		return 0, 0, fmt.Errorf("dcgstore: bad manifest key %q", key.String())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.manifests[key] != nil {
		m.touched[key] = m.now()
		if c := m.carried[key]; c != nil {
			return c.NumEdges(), c.Total(), nil
		}
		return 0, 0, nil
	}
	sub := m.forLocked(key)
	if sub == nil {
		return 0, 0, fmt.Errorf("dcgstore: program ledger full (%d keys)", len(m.subs))
	}
	prevVer := m.latest[man.Program]
	if prevVer != "" && prevVer != man.Version {
		prevKey := api.ProgramKey{Program: man.Program, Version: prevVer}
		if prevM, prevS := m.manifests[prevKey], m.subs[prevKey]; prevM != nil && prevS != nil {
			carried := CarryForward(prevS.Snapshot(), prevM, man)
			if carried.NumEdges() > 0 {
				sub.MergeDCG(carried)
				m.carried[key] = carried
				carriedEdges, carriedWeight = carried.NumEdges(), carried.Total()
			}
		}
	}
	m.manifests[key] = man
	m.manifestOrder = append(m.manifestOrder, key)
	m.latest[man.Program] = man.Version
	return carriedEdges, carriedWeight, nil
}

// MergedSnapshot returns a consistent merge of the default substore and
// every keyed substore — the cross-version view the unparameterized
// /snapshot serves. The merge is commutative and the snapshot per
// substore is consistent; cross-substore skew is bounded by the call
// itself (substores are independent stores).
func (m *Multi) MergedSnapshot() *profile.DCG {
	g := m.def.Snapshot()
	for _, key := range m.Keys() {
		if sub := m.Lookup(key); sub != nil {
			g.Merge(sub.Snapshot())
		}
	}
	return g
}

// DecayAll runs one decay epoch on the default substore and every keyed
// substore, returning the total number of edges pruned.
func (m *Multi) DecayAll(factor, prune float64) int {
	pruned := m.def.Decay(factor, prune)
	for _, key := range m.Keys() {
		if sub := m.Lookup(key); sub != nil {
			pruned += sub.Decay(factor, prune)
		}
	}
	return pruned
}

// EvictRetired removes substores for retired versions — any (program,
// version) that is no longer the program's latest version and has seen
// no write-path access (push or manifest registration) for at least
// ttl. The latest version of every program is always kept, however
// idle, as is a program's sole version (never superseded = not
// retired). Eviction drops the substore, its manifest, and its
// carried-forward graph; the version can still come back cold if a
// straggler pushes under it again, which is exactly the slot the cap
// in forLocked guards. Returns how many substores were evicted.
func (m *Multi) EvictRetired(ttl time.Duration) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.now().Add(-ttl)
	n := 0
	for key := range m.subs {
		if m.latest[key.Program] == key.Version {
			continue
		}
		if t, ok := m.touched[key]; ok && t.After(cutoff) {
			continue
		}
		delete(m.subs, key)
		delete(m.touched, key)
		delete(m.carried, key)
		delete(m.manifests, key)
		n++
	}
	if n > 0 {
		order := m.manifestOrder[:0]
		for _, key := range m.manifestOrder {
			if m.manifests[key] != nil {
				order = append(order, key)
			}
		}
		m.manifestOrder = order
		m.evicted += uint64(n)
	}
	return n
}

// Evicted returns the total number of substores EvictRetired has
// dropped over the Multi's lifetime.
func (m *Multi) Evicted() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.evicted
}

// SetClock replaces the idle-tracking clock (tests only).
func (m *Multi) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// CarryForward computes the profile mass of old that remains valid in
// the build described by newM: edges whose caller, callee, and site
// owner all have name+body-identical methods in both manifests, with
// method and site IDs remapped to the new build's numbering. Edges
// touching any changed method are dropped — their shape may have
// changed, and a wrong edge is worse than a cold one.
func CarryForward(old *profile.DCG, oldM, newM *bytecode.Manifest) *profile.DCG {
	out := profile.NewDCG()
	if old == nil || oldM == nil || newM == nil {
		return out
	}
	newByName := make(map[string]int, len(newM.Methods))
	for i, f := range newM.Methods {
		if f.Name != "" {
			newByName[f.Name] = i
		}
	}
	methodMap := make(map[int]int, len(oldM.Methods))
	for i, f := range oldM.Methods {
		if f.Name == "" {
			continue
		}
		if j, ok := newByName[f.Name]; ok && newM.Methods[j].Hash == f.Hash {
			methodMap[i] = j
		}
	}
	newSite := make(map[bytecode.SiteFingerprint]int, len(newM.Sites))
	for s, sf := range newM.Sites {
		newSite[sf] = s
	}
	siteMap := make(map[int]int, len(oldM.Sites))
	for s, sf := range oldM.Sites {
		if sf.Owner < 0 {
			continue
		}
		nOwner, ok := methodMap[sf.Owner]
		if !ok {
			continue
		}
		if ns, ok := newSite[bytecode.SiteFingerprint{Owner: nOwner, PC: sf.PC}]; ok {
			siteMap[s] = ns
		}
	}
	for _, e := range old.Edges() {
		nc, ok := methodMap[e.Caller]
		if !ok {
			continue
		}
		ne, ok := methodMap[e.Callee]
		if !ok {
			continue
		}
		ns, ok := siteMap[e.Site]
		if !ok {
			continue
		}
		out.AddSample(profile.Edge{Caller: nc, Site: ns, Callee: ne}, old.Weight(e))
	}
	return out
}
