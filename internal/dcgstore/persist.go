package dcgstore

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"gocbs/internal/profile"
)

// Checkpoint persistence.
//
// The store's durability model is checkpoint-based: the whole graph is
// periodically written to a state directory and reloaded on boot, so a
// restarted daemon resumes with the fleet DCG intact instead of empty.
// A checkpoint is two files, each replaced via write-to-temp + fsync +
// atomic rename so a crash mid-write leaves the previous checkpoint
// untouched:
//
//	store.dcgb   the graph, in the versioned DCGB binary wire format
//	             (the same canonical serialization /snapshot streams)
//	pushers.seq  per-pusher ingest high-water marks, line-oriented:
//	             "cbsd-seq v1" header then "<pusher-id> <seq>" lines
//
// The pair is captured atomically (Store.CheckpointState), and both
// files are written before either is renamed into place, sequences
// first, so a crash between the two renames leaves sequences from a
// *newer* checkpoint than the graph. That order is the safe one: a
// too-new high-water mark can only drop a retried increment, an
// undercount no worse than the already-documented loss of the window
// since the last durable graph. The opposite order (new graph, old
// sequences) would let a post-restart retry double-count an increment
// the graph already contains, which is corruption.
//
// Everything merged after the last completed checkpoint is lost on a
// crash; a graceful shutdown (SIGTERM) writes a final checkpoint after
// draining in-flight requests, so planned restarts lose nothing.

const (
	// CheckpointGraphFile is the graph file inside a state directory.
	CheckpointGraphFile = "store.dcgb"
	// CheckpointSeqFile is the sequence file inside a state directory.
	CheckpointSeqFile = "pushers.seq"
	// seqFileHeader is the sequence file's format header.
	seqFileHeader = "cbsd-seq v1"
)

// DefaultCheckpointEvery is the default interval between periodic
// checkpoints.
const DefaultCheckpointEvery = 30 * time.Second

// writeFileAtomic writes the payload produced by fill to dir/name via
// a temp file, fsync, and rename, so readers (and crash recovery) see
// either the old complete file or the new complete file, never a
// partial write.
func writeFileAtomic(dir, name string, fill func(io.Writer) error) error {
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	bw := bufio.NewWriter(f)
	if err := fill(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, name))
}

// SaveCheckpoint writes a consistent checkpoint of s into dir,
// creating dir if needed.
func SaveCheckpoint(dir string, s *Store) error {
	g, seqs := s.CheckpointState()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Sequences first, graph last: see the ordering argument above.
	if err := writeFileAtomic(dir, CheckpointSeqFile, func(w io.Writer) error {
		return writeSequences(w, seqs)
	}); err != nil {
		return fmt.Errorf("checkpoint sequences: %w", err)
	}
	if err := writeFileAtomic(dir, CheckpointGraphFile, func(w io.Writer) error {
		_, err := g.WriteTo(w)
		return err
	}); err != nil {
		return fmt.Errorf("checkpoint graph: %w", err)
	}
	return nil
}

// LoadCheckpoint reads the checkpoint in dir. A directory with no
// graph file is a fresh start: (nil, nil, nil). A graph file with no
// sequence file is tolerated (empty sequence map) for forward
// compatibility with states written by older builds; a present but
// corrupt file of either kind is an error — silently ignoring it would
// corrupt weights on the next retry.
func LoadCheckpoint(dir string) (*profile.DCG, map[string]uint64, error) {
	gf, err := os.Open(filepath.Join(dir, CheckpointGraphFile))
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint graph: %w", err)
	}
	defer gf.Close()
	g, err := profile.ReadDCG(gf)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint graph %s: %w", CheckpointGraphFile, err)
	}
	sf, err := os.Open(filepath.Join(dir, CheckpointSeqFile))
	if os.IsNotExist(err) {
		return g, map[string]uint64{}, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint sequences: %w", err)
	}
	defer sf.Close()
	seqs, err := readSequences(sf)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint sequences %s: %w", CheckpointSeqFile, err)
	}
	return g, seqs, nil
}

// RestoreCheckpoint loads dir's checkpoint into s (graph merged,
// high-water marks seeded) and reports whether a checkpoint existed.
// Call it on an empty store before serving traffic.
func RestoreCheckpoint(s *Store, dir string) (bool, error) {
	g, seqs, err := LoadCheckpoint(dir)
	if err != nil || g == nil {
		return false, err
	}
	s.MergeDCG(g)
	s.RestoreSequences(seqs)
	return true, nil
}

// writeSequences serializes high-water marks in sorted order so the
// file, like the graph, is canonical.
func writeSequences(w io.Writer, seqs map[string]uint64) error {
	if _, err := fmt.Fprintln(w, seqFileHeader); err != nil {
		return err
	}
	ids := make([]string, 0, len(seqs))
	for id := range seqs {
		// Defense in depth: the ingest handler validates IDs, but a
		// hand-seeded map must not be able to corrupt the line format.
		if ValidPusherID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, err := fmt.Fprintf(w, "%s %d\n", id, seqs[id]); err != nil {
			return err
		}
	}
	return nil
}

// readSequences parses the sequence file format.
func readSequences(r io.Reader) (map[string]uint64, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != seqFileHeader {
		return nil, fmt.Errorf("bad header %q (want %q)", sc.Text(), seqFileHeader)
	}
	seqs := make(map[string]uint64)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 || !ValidPusherID(fields[0]) {
			return nil, fmt.Errorf("line %d: malformed entry %q", line, text)
		}
		seq, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad sequence %q", line, fields[1])
		}
		seqs[fields[0]] = seq
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return seqs, nil
}

// Checkpointer periodically checkpoints a store to a state directory.
// cbsd runs one in the background and writes one final checkpoint
// itself after draining in-flight requests on shutdown.
type Checkpointer struct {
	Dir   string
	Store *Store
	// Multi, when set, checkpoints the whole keyed store family
	// (SaveMultiCheckpoint) instead of just Store.
	Multi *Multi
	// Every is the checkpoint interval; <= 0 selects
	// DefaultCheckpointEvery.
	Every time.Duration
	// Logf, when set, receives one line per failed checkpoint (a
	// failure is retried at the next tick, not fatal).
	Logf func(format string, args ...any)
}

// Run checkpoints every interval until ctx is cancelled. It never
// returns a periodic failure (transient disk pressure should not kill
// the daemon); failures are logged through Logf and retried.
func (c *Checkpointer) Run(ctx context.Context) {
	every := c.Every
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			var err error
			if c.Multi != nil {
				err = SaveMultiCheckpoint(c.Dir, c.Multi)
			} else {
				err = SaveCheckpoint(c.Dir, c.Store)
			}
			if err != nil && c.Logf != nil {
				c.Logf("checkpoint: %v", err)
			}
		}
	}
}
