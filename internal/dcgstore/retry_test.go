package dcgstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gocbs/internal/profile"
)

// fastClient returns c tuned so retry tests don't sleep for real.
func fastClient(url string) *Client {
	c := NewClient(url)
	c.Backoff = time.Millisecond
	c.MaxBackoff = 4 * time.Millisecond
	return c
}

// ingestHandler is a minimal daemon-side /ingest: it merges the posted
// increment through the store's sequenced path and answers 200, with
// test-controlled fault injection before the response.
func ingestHandler(t testing.TB, store *Store, dropResponse func(n uint64) bool) http.Handler {
	var requests atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := requests.Add(1)
		g, err := profile.ReadDCG(r.Body)
		if err != nil {
			t.Errorf("ingest: bad payload: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var seq uint64
		pusher := r.Header.Get(HeaderPusher)
		if pusher != "" {
			seq, err = strconv.ParseUint(r.Header.Get(HeaderSeq), 10, 64)
			if err != nil {
				t.Errorf("ingest: bad %s: %v", HeaderSeq, err)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		store.MergeDCGFrom(pusher, seq, g)
		if dropResponse != nil && dropResponse(n) {
			// The increment IS applied, but the pusher never hears
			// back — the at-least-once hazard this PR fixes.
			panic(http.ErrAbortHandler)
		}
		fmt.Fprintln(w, `{"applied":true}`)
	})
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "try later", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "{}")
	}))
	defer ts.Close()

	g := profile.NewDCG()
	g.AddSample(edge(1, 1, 1), 1)
	if err := fastClient(ts.URL).Push(g); err != nil {
		t.Fatalf("Push after transient failures: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad payload", http.StatusBadRequest)
	}))
	defer ts.Close()

	g := profile.NewDCG()
	g.AddSample(edge(1, 1, 1), 1)
	if err := fastClient(ts.URL).Push(g); err == nil {
		t.Fatal("Push succeeded against a 400ing daemon")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (4xx must not be retried)", got)
	}
}

func TestClientRetryAfterDroppedResponseDoesNotDoubleCount(t *testing.T) {
	store := New(8)
	// Drop the very first response: the increment lands, the ack is
	// lost, the client retries the same stamp, the store deduplicates.
	ts := httptest.NewServer(ingestHandler(t, store, func(n uint64) bool { return n == 1 }))
	defer ts.Close()

	g := profile.NewDCG()
	g.AddSample(edge(1, 2, 3), 7)
	if err := fastClient(ts.URL).Push(g); err != nil {
		t.Fatalf("Push: %v", err)
	}
	s := store.Snapshot()
	if w := s.Weight(edge(1, 2, 3)); w != 7 {
		t.Errorf("weight = %v, want 7 (retry after lost response double-counted)", w)
	}
	if d := store.Stats().Duplicates; d != 1 {
		t.Errorf("Duplicates = %d, want 1", d)
	}
}

// TestFlakyPusherSoak is the end-to-end exactly-once soak: concurrent
// pushers stream growing graphs through DeltaPushers while the daemon
// drops a third of its responses after applying them, forcing constant
// retries. The final store must equal the serial merge of the final
// graphs — byte-identical under canonical serialization. Run under
// -race via `make test-race` / `make test-recovery`.
func TestFlakyPusherSoak(t *testing.T) {
	const (
		K     = 8  // pushers
		steps = 25 // pushes per pusher
	)
	store := New(DefaultShards)
	ts := httptest.NewServer(ingestHandler(t, store, func(n uint64) bool { return n%3 == 0 }))
	defer ts.Close()

	finals := make([]*profile.DCG, K)
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + k)))
			c := fastClient(ts.URL)
			// A third of responses vanish; give the retry loop enough
			// budget that an unlucky streak cannot fail the soak.
			c.Retries = 30
			pusher := NewDeltaPusher(c)
			g := profile.NewDCG()
			for i := 0; i < steps; i++ {
				for j := 0; j < 12; j++ {
					g.AddSample(edge(rng.Intn(30), rng.Intn(40), rng.Intn(30)), float64(1+rng.Intn(4)))
				}
				if err := pusher.Push(g); err != nil {
					t.Errorf("pusher %d step %d: %v", k, i, err)
					return
				}
			}
			if pusher.Pending() != 0 {
				t.Errorf("pusher %d finished with %d unacknowledged increments", k, pusher.Pending())
			}
			finals[k] = g
		}(k)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	serial := profile.NewDCG()
	for _, g := range finals {
		serial.Merge(g)
	}
	got := store.Snapshot()
	var gb, sb bytes.Buffer
	if _, err := got.WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if _, err := serial.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), sb.Bytes()) {
		t.Errorf("flaky aggregation diverged from serial merge: %d edges/%v weight vs %d edges/%v weight",
			got.NumEdges(), got.Total(), serial.NumEdges(), serial.Total())
	}
	if store.Stats().Duplicates == 0 {
		t.Error("soak never exercised the dedup path; fault injection broken?")
	}
}

// TestDeltaPusherQueuesAcrossOutage: increments captured while the
// daemon is down stay queued with their original stamps and all land,
// in order, once it recovers.
func TestDeltaPusherQueuesAcrossOutage(t *testing.T) {
	store := New(8)
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		ingestHandler(t, store, nil).ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	c.Retries = -1 // fail fast so the queue, not the retry loop, carries the outage
	pusher := NewDeltaPusher(c)
	g := profile.NewDCG()

	down.Store(true)
	for i := 1; i <= 3; i++ {
		g.AddSample(edge(i, i, i), float64(i))
		if err := pusher.Push(g); err == nil {
			t.Fatal("Push succeeded against a down daemon")
		}
	}
	if pusher.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", pusher.Pending())
	}

	down.Store(false)
	g.AddSample(edge(4, 4, 4), 4)
	if err := pusher.Push(g); err != nil {
		t.Fatalf("Push after recovery: %v", err)
	}
	if pusher.Pending() != 0 || pusher.Pushes != 4 {
		t.Errorf("after recovery Pending=%d Pushes=%d, want 0/4", pusher.Pending(), pusher.Pushes)
	}
	var gb, sb bytes.Buffer
	if _, err := store.Snapshot().WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), sb.Bytes()) {
		t.Error("store after outage differs from the source graph")
	}
}

// TestTickPusherRetriesAndGiveUp: a failing daemon no longer kills the
// pusher on the first error; it keeps retrying until GiveUpAfter
// consecutive failures, and Flush delivers everything once the daemon
// is healthy again.
func TestTickPusherRetriesAndGiveUp(t *testing.T) {
	store := New(8)
	var down atomic.Bool
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		ingestHandler(t, store, nil).ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := fastClient(ts.URL)
	c.Retries = -1
	g := profile.NewDCG()
	tp := NewTickPusher(c, g, 1)
	tp.GiveUpAfter = 3

	down.Store(true)
	for i := 1; i <= 6; i++ {
		g.AddSample(edge(i, i, i), 1)
		tp.OnTimerTick(nil)
	}
	if tp.Err == nil {
		t.Fatal("Err not recorded while daemon down")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("daemon saw %d attempts, want 3 (give-up after 3 consecutive failures)", got)
	}

	// Flush still makes a final attempt and drains the whole queue.
	down.Store(false)
	if err := tp.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	if tp.Err != nil || tp.Pending() != 0 {
		t.Errorf("after Flush Err=%v Pending=%d", tp.Err, tp.Pending())
	}
	snap := store.Snapshot()
	if snap.NumEdges() != 6 || snap.Total() != 6 {
		t.Errorf("store has %d edges/%v weight, want 6/6", snap.NumEdges(), snap.Total())
	}
}
