package dcgstore

import (
	"bytes"
	"sync"
)

// BufPool recycles the byte buffers the daemon reads DCGB request
// bodies into before batch-decoding them. Ingest is the daemon's hot
// write path: without pooling, every push allocates (and garbage
// collects) a body-sized buffer. Buffers handed back by Put are
// retained only up to maxRetain bytes of capacity, so one pathological
// giant upload cannot pin its allocation in the pool forever.
//
// The decode contract that makes pooling safe lives on the consumer
// side: profile.DecodeDCGBytes copies every value out of the slice and
// retains nothing, so a buffer may be reused the moment decoding
// returns. The -race soak in internal/daemon drives concurrent pushers
// through this pool and fails if any request's graph ever aliases
// another's bytes.
type BufPool struct {
	maxRetain int
	pool      sync.Pool
}

// NewBufPool returns a pool that keeps returned buffers up to
// maxRetain bytes of capacity (larger ones are dropped for the GC).
func NewBufPool(maxRetain int) *BufPool {
	return &BufPool{
		maxRetain: maxRetain,
		pool: sync.Pool{
			New: func() any { return new(bytes.Buffer) },
		},
	}
}

// Get returns an empty buffer ready for reuse.
func (p *BufPool) Get() *bytes.Buffer {
	b := p.pool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// Put returns a buffer to the pool. Oversized buffers are discarded so
// the pool's steady-state footprint tracks typical request sizes, not
// the worst one ever seen.
func (p *BufPool) Put(b *bytes.Buffer) {
	if b == nil || b.Cap() > p.maxRetain {
		return
	}
	p.pool.Put(b)
}

// DecodeBuffers is the shared ingest-body pool, sized to retain
// buffers up to 4 MiB — comfortably above the suite's biggest DCG
// snapshots while keeping the pool's idle footprint bounded.
var DecodeBuffers = NewBufPool(4 << 20)
