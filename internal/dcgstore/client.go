package dcgstore

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"gocbs/internal/api"
	"gocbs/internal/bytecode"
	"gocbs/internal/profile"
)

// Push retry defaults, aliased from the unified api client so every
// consumer shares one policy. Retrying a push is safe because every
// push is stamped with a (pusher ID, sequence) pair and the daemon
// deduplicates increments it already applied (see sequence.go), so an
// increment whose response was lost cannot be double-counted.
const (
	// DefaultRetries is how many times a failed push is retried after
	// the first attempt.
	DefaultRetries = api.DefaultRetries
	// DefaultBackoff is the first retry's base delay; each further
	// retry doubles it.
	DefaultBackoff = api.DefaultBackoff
	// DefaultMaxBackoff caps the exponential growth.
	DefaultMaxBackoff = api.DefaultMaxBackoff
)

// newPusherID returns a fresh random pusher identity. IDs are random
// (not host-derived) so two pushers never collide in the daemon's
// sequence table: a colliding restarted pusher would have its early
// increments dropped as duplicates of the previous incarnation's.
func newPusherID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to the global PRNG; uniqueness is what matters and
		// 64 random bits from either source give it.
		return fmt.Sprintf("p-%016x", rand.Uint64())
	}
	return "p-" + hex.EncodeToString(b[:])
}

// Client is the delta-push view of a cbsd daemon: api.Client plus a
// pusher identity and its sequence counter. The HTTP mechanics —
// endpoint paths, retry/backoff/timeout, error decoding — live in
// internal/api; this wrapper owns only what is push-specific.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8944".
	BaseURL string
	// HTTPClient defaults to a client with api.DefaultTimeout.
	HTTPClient *http.Client
	// PusherID identifies this client in the daemon's per-pusher
	// ingest sequence; NewClient generates a random one.
	PusherID string
	// Retries, Backoff, MaxBackoff tune push retry behaviour; zero
	// values select the Default* constants. Retries < 0 disables
	// retrying.
	Retries    int
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Key, when non-zero, stamps every push with a (program, version)
	// identity so the daemon merges it into that build's own graph
	// instead of the legacy shared aggregate. Set it to the pushing
	// VM's program name and bytecode.Program.Version().
	Key api.ProgramKey

	seq uint64
}

// NewClient returns a client for the daemon at baseURL with a fresh
// pusher identity and default retry policy.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: api.DefaultTimeout},
		PusherID:   newPusherID(),
	}
}

// api materializes the unified client this wrapper delegates to. Built
// per call so field mutations (tests tune Retries/Backoff after
// NewClient) keep taking effect.
func (c *Client) api() *api.Client {
	return &api.Client{
		BaseURL:    c.BaseURL,
		HTTPClient: c.HTTPClient,
		Retries:    c.Retries,
		Backoff:    c.Backoff,
		MaxBackoff: c.MaxBackoff,
	}
}

// nextSeq allocates the next sequence number. Not safe for concurrent
// use: a pusher's sequence space is strictly ordered by design, so a
// Client must push from one goroutine (use one Client per pusher).
func (c *Client) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// Push serializes g and POSTs it to the daemon's ingest endpoint as
// the client's next sequenced increment, with capped exponential
// backoff on transient failures.
func (c *Client) Push(g *profile.DCG) error {
	return c.PushDelta(c.PusherID, c.nextSeq(), g)
}

// PushDelta sends one stamped increment: g under the given (pusher,
// sequence) identity. Transient failures (network errors, 5xx,
// throttling) are retried with capped exponential backoff and jitter;
// a duplicate response — the daemon already applied this sequence on
// an attempt whose response was lost — counts as success. The same
// (pusher, seq) pair must always carry the same graph.
func (c *Client) PushDelta(pusher string, seq uint64, g *profile.DCG) error {
	_, err := c.api().PushDCGKeyed(pusher, seq, c.Key, g)
	return err
}

// RegisterManifest registers a build's method/site manifest with the
// daemon, enabling cross-version profile carry-forward when a newer
// build of the same program later registers. Idempotent.
func (c *Client) RegisterManifest(man *bytecode.Manifest) (*api.ManifestResponse, error) {
	return c.api().PushManifest(api.ProgramKey{Program: man.Program, Version: man.Version}, man.Encode())
}

// Fetch retrieves the daemon's current merged DCG from the snapshot
// endpoint.
func (c *Client) Fetch() (*profile.DCG, error) {
	return c.api().FetchSnapshot()
}

// stampedDelta is one increment frozen with its sequence number. Once
// stamped, the payload never changes: the daemon may have applied it
// on an attempt whose response was lost, so re-sending different bytes
// under the same sequence would desynchronize pusher and daemon.
type stampedDelta struct {
	seq   uint64
	delta *profile.DCG
}

// DeltaPusher streams a monotonically growing DCG to a daemon as
// non-overlapping increments: each Push captures only the weight added
// since the previous Push, so the daemon's merge of all increments
// equals the source graph exactly (no double counting). Workers use it
// to push periodic snapshots mid-run plus one final flush.
//
// Delivery is exactly-once: every increment is stamped with this
// pusher's identity and a strictly increasing sequence number, and
// increments that could not be acknowledged stay queued — frozen, with
// their original stamps — and are re-sent in order ahead of newer
// increments on the next Push. The daemon drops any stamp it has
// already applied, so neither a lost response nor a later give-up can
// double-count an edge.
type DeltaPusher struct {
	client *Client
	id     string
	seq    uint64
	last   *profile.DCG
	// pending holds unacknowledged increments in sequence order.
	pending []stampedDelta
	// acked accumulates every increment the daemon acknowledged; it is
	// by construction the exact graph the daemon owes this pusher.
	acked *profile.DCG
	// Pushes counts increments acknowledged by the daemon (empty
	// deltas are skipped).
	Pushes int
}

// NewDeltaPusher returns a pusher that streams to client under its own
// fresh pusher identity (so several DeltaPushers may share a Client).
func NewDeltaPusher(client *Client) *DeltaPusher {
	return NewDeltaPusherWithID(client, "")
}

// NewDeltaPusherWithID returns a pusher under a caller-chosen identity;
// an empty or invalid id falls back to a fresh random one. Fixed IDs
// are for deterministic harnesses (the fleet simulator names its
// pushers after their seed); production pushers want NewDeltaPusher's
// random identity — see newPusherID for why collisions are dangerous.
func NewDeltaPusherWithID(client *Client, id string) *DeltaPusher {
	if !ValidPusherID(id) {
		id = newPusherID()
	}
	return &DeltaPusher{client: client, id: id, acked: profile.NewDCG()}
}

// PusherID returns the identity this pusher's increments are stamped
// with.
func (p *DeltaPusher) PusherID() string { return p.id }

// Pending reports how many stamped increments await acknowledgement.
func (p *DeltaPusher) Pending() int { return len(p.pending) }

// Acknowledged returns a clone of the cumulative graph the daemon has
// acknowledged from this pusher — the sum of every frozen increment
// whose push succeeded. Under exactly-once delivery the daemon's store
// owes this pusher precisely this graph, which is what the fleet
// simulator's conservation checker asserts.
func (p *DeltaPusher) Acknowledged() *profile.DCG { return p.acked.Clone() }

// Push captures the weight cur has accumulated since the previous Push
// (all of cur on the first call) as a new stamped increment, then
// sends every pending increment in order. On failure the unsent tail
// stays queued for the next call; the capture still happened, so no
// weight is ever re-captured or lost. cur is cloned, so the caller's
// graph may keep growing immediately.
func (p *DeltaPusher) Push(cur *profile.DCG) error {
	delta := cur.DeltaSince(p.last)
	p.last = cur.Clone()
	if delta.NumEdges() > 0 {
		p.seq++
		p.pending = append(p.pending, stampedDelta{seq: p.seq, delta: delta})
	}
	return p.flush()
}

// flush sends pending increments oldest-first, stopping at the first
// failure.
func (p *DeltaPusher) flush() error {
	for len(p.pending) > 0 {
		head := p.pending[0]
		if err := p.client.PushDelta(p.id, head.seq, head.delta); err != nil {
			return err
		}
		p.pending = p.pending[1:]
		p.acked.Merge(head.delta)
		p.Pushes++
	}
	return nil
}
