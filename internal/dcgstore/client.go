package dcgstore

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"gocbs/internal/profile"
)

// Client talks to a cbsd aggregation daemon over HTTP.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8944".
	BaseURL string
	// HTTPClient defaults to a client with a 10s timeout.
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Push serializes g and POSTs it to the daemon's /ingest endpoint.
func (c *Client) Push(g *profile.DCG) error {
	var body bytes.Buffer
	if _, err := g.WriteTo(&body); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/ingest", "application/octet-stream", &body)
	if err != nil {
		return fmt.Errorf("push: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("push: daemon returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Fetch retrieves the daemon's current merged DCG from /snapshot.
func (c *Client) Fetch() (*profile.DCG, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/snapshot")
	if err != nil {
		return nil, fmt.Errorf("fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fetch: daemon returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return profile.ReadDCG(resp.Body)
}

// DeltaPusher streams a monotonically growing DCG to a daemon as
// non-overlapping increments: each Push sends only the weight added
// since the previous Push, so the daemon's merge of all increments
// equals the source graph exactly (no double counting). Workers use it
// to push periodic snapshots mid-run plus one final flush.
type DeltaPusher struct {
	client *Client
	last   *profile.DCG
	// Pushes counts increments actually sent (empty deltas are
	// skipped).
	Pushes int
}

// NewDeltaPusher returns a pusher that streams to client.
func NewDeltaPusher(client *Client) *DeltaPusher {
	return &DeltaPusher{client: client}
}

// Push sends the weight cur has accumulated since the previous Push
// (all of cur on the first call). Empty deltas are skipped without a
// round trip. cur is captured by value (cloned) so the caller's graph
// may keep growing immediately.
func (p *DeltaPusher) Push(cur *profile.DCG) error {
	delta := cur.DeltaSince(p.last)
	snapshot := cur.Clone()
	if delta.NumEdges() == 0 {
		p.last = snapshot
		return nil
	}
	if err := p.client.Push(delta); err != nil {
		return err
	}
	p.last = snapshot
	p.Pushes++
	return nil
}
