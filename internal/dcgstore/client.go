package dcgstore

import (
	"bytes"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"gocbs/internal/profile"
)

// Push retry defaults. Retrying a push is safe because every push is
// stamped with a (pusher ID, sequence) pair and the daemon deduplicates
// increments it already applied (see sequence.go), so an increment
// whose response was lost cannot be double-counted.
const (
	// DefaultRetries is how many times a failed push is retried after
	// the first attempt.
	DefaultRetries = 4
	// DefaultBackoff is the first retry's base delay; each further
	// retry doubles it.
	DefaultBackoff = 100 * time.Millisecond
	// DefaultMaxBackoff caps the exponential growth.
	DefaultMaxBackoff = 2 * time.Second
)

// newPusherID returns a fresh random pusher identity. IDs are random
// (not host-derived) so two pushers never collide in the daemon's
// sequence table: a colliding restarted pusher would have its early
// increments dropped as duplicates of the previous incarnation's.
func newPusherID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to the global PRNG; uniqueness is what matters and
		// 64 random bits from either source give it.
		return fmt.Sprintf("p-%016x", rand.Uint64())
	}
	return "p-" + hex.EncodeToString(b[:])
}

// Client talks to a cbsd aggregation daemon over HTTP.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8944".
	BaseURL string
	// HTTPClient defaults to a client with a 10s timeout.
	HTTPClient *http.Client
	// PusherID identifies this client in the daemon's per-pusher
	// ingest sequence; NewClient generates a random one.
	PusherID string
	// Retries, Backoff, MaxBackoff tune push retry behaviour; zero
	// values select the Default* constants. Retries < 0 disables
	// retrying.
	Retries    int
	Backoff    time.Duration
	MaxBackoff time.Duration

	seq uint64
}

// NewClient returns a client for the daemon at baseURL with a fresh
// pusher identity and default retry policy.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
		PusherID:   newPusherID(),
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// nextSeq allocates the next sequence number. Not safe for concurrent
// use: a pusher's sequence space is strictly ordered by design, so a
// Client must push from one goroutine (use one Client per pusher).
func (c *Client) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// Push serializes g and POSTs it to the daemon's /ingest endpoint as
// the client's next sequenced increment, with capped exponential
// backoff on transient failures.
func (c *Client) Push(g *profile.DCG) error {
	return c.PushDelta(c.PusherID, c.nextSeq(), g)
}

// retryableStatus reports whether an HTTP status is worth retrying:
// server-side trouble or throttling, never a 4xx protocol error (the
// same bytes would just fail again).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusRequestTimeout || code == http.StatusTooManyRequests
}

// backoffDelay returns the sleep before retry attempt (0-based), an
// exponentially growing delay capped at MaxBackoff with uniform jitter
// in [d/2, d) so a fleet of pushers knocked over together does not
// retry in lockstep.
func (c *Client) backoffDelay(attempt int) time.Duration {
	base, max := c.Backoff, c.MaxBackoff
	if base <= 0 {
		base = DefaultBackoff
	}
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	d := base << attempt
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// PushDelta sends one stamped increment: g under the given (pusher,
// sequence) identity. Transient failures (network errors, 5xx,
// throttling) are retried with capped exponential backoff and jitter;
// a duplicate response — the daemon already applied this sequence on
// an attempt whose response was lost — counts as success. The same
// (pusher, seq) pair must always carry the same graph.
func (c *Client) PushDelta(pusher string, seq uint64, g *profile.DCG) error {
	var body bytes.Buffer
	if _, err := g.WriteTo(&body); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	payload := body.Bytes()

	retries := c.Retries
	if retries == 0 {
		retries = DefaultRetries
	}
	if retries < 0 {
		retries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.pushOnce(pusher, seq, payload)
		if err == nil {
			return nil
		}
		lastErr = err
		var pe *pushError
		permanent := !errors.As(err, &pe) || !pe.retryable
		if permanent || attempt >= retries {
			if attempt > 0 {
				return fmt.Errorf("push (after %d attempts): %w", attempt+1, lastErr)
			}
			return lastErr
		}
		time.Sleep(c.backoffDelay(attempt))
	}
}

// pushError carries retryability alongside the message.
type pushError struct {
	err       error
	retryable bool
}

func (e *pushError) Error() string { return e.err.Error() }
func (e *pushError) Unwrap() error { return e.err }

// pushOnce makes a single /ingest attempt.
func (c *Client) pushOnce(pusher string, seq uint64, payload []byte) error {
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/ingest", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("push: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if pusher != "" {
		req.Header.Set(HeaderPusher, pusher)
		req.Header.Set(HeaderSeq, strconv.FormatUint(seq, 10))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Network-level failure: the request may or may not have been
		// applied — exactly the case sequence stamping makes retryable.
		return &pushError{err: fmt.Errorf("push: %w", err), retryable: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &pushError{
			err:       fmt.Errorf("push: daemon returned %s: %s", resp.Status, bytes.TrimSpace(msg)),
			retryable: retryableStatus(resp.StatusCode),
		}
	}
	return nil
}

// Fetch retrieves the daemon's current merged DCG from /snapshot.
func (c *Client) Fetch() (*profile.DCG, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/snapshot")
	if err != nil {
		return nil, fmt.Errorf("fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fetch: daemon returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return profile.ReadDCG(resp.Body)
}

// stampedDelta is one increment frozen with its sequence number. Once
// stamped, the payload never changes: the daemon may have applied it
// on an attempt whose response was lost, so re-sending different bytes
// under the same sequence would desynchronize pusher and daemon.
type stampedDelta struct {
	seq   uint64
	delta *profile.DCG
}

// DeltaPusher streams a monotonically growing DCG to a daemon as
// non-overlapping increments: each Push captures only the weight added
// since the previous Push, so the daemon's merge of all increments
// equals the source graph exactly (no double counting). Workers use it
// to push periodic snapshots mid-run plus one final flush.
//
// Delivery is exactly-once: every increment is stamped with this
// pusher's identity and a strictly increasing sequence number, and
// increments that could not be acknowledged stay queued — frozen, with
// their original stamps — and are re-sent in order ahead of newer
// increments on the next Push. The daemon drops any stamp it has
// already applied, so neither a lost response nor a later give-up can
// double-count an edge.
type DeltaPusher struct {
	client *Client
	id     string
	seq    uint64
	last   *profile.DCG
	// pending holds unacknowledged increments in sequence order.
	pending []stampedDelta
	// acked accumulates every increment the daemon acknowledged; it is
	// by construction the exact graph the daemon owes this pusher.
	acked *profile.DCG
	// Pushes counts increments acknowledged by the daemon (empty
	// deltas are skipped).
	Pushes int
}

// NewDeltaPusher returns a pusher that streams to client under its own
// fresh pusher identity (so several DeltaPushers may share a Client).
func NewDeltaPusher(client *Client) *DeltaPusher {
	return NewDeltaPusherWithID(client, "")
}

// NewDeltaPusherWithID returns a pusher under a caller-chosen identity;
// an empty or invalid id falls back to a fresh random one. Fixed IDs
// are for deterministic harnesses (the fleet simulator names its
// pushers after their seed); production pushers want NewDeltaPusher's
// random identity — see newPusherID for why collisions are dangerous.
func NewDeltaPusherWithID(client *Client, id string) *DeltaPusher {
	if !ValidPusherID(id) {
		id = newPusherID()
	}
	return &DeltaPusher{client: client, id: id, acked: profile.NewDCG()}
}

// PusherID returns the identity this pusher's increments are stamped
// with.
func (p *DeltaPusher) PusherID() string { return p.id }

// Pending reports how many stamped increments await acknowledgement.
func (p *DeltaPusher) Pending() int { return len(p.pending) }

// Acknowledged returns a clone of the cumulative graph the daemon has
// acknowledged from this pusher — the sum of every frozen increment
// whose push succeeded. Under exactly-once delivery the daemon's store
// owes this pusher precisely this graph, which is what the fleet
// simulator's conservation checker asserts.
func (p *DeltaPusher) Acknowledged() *profile.DCG { return p.acked.Clone() }

// Push captures the weight cur has accumulated since the previous Push
// (all of cur on the first call) as a new stamped increment, then
// sends every pending increment in order. On failure the unsent tail
// stays queued for the next call; the capture still happened, so no
// weight is ever re-captured or lost. cur is cloned, so the caller's
// graph may keep growing immediately.
func (p *DeltaPusher) Push(cur *profile.DCG) error {
	delta := cur.DeltaSince(p.last)
	p.last = cur.Clone()
	if delta.NumEdges() > 0 {
		p.seq++
		p.pending = append(p.pending, stampedDelta{seq: p.seq, delta: delta})
	}
	return p.flush()
}

// flush sends pending increments oldest-first, stopping at the first
// failure.
func (p *DeltaPusher) flush() error {
	for len(p.pending) > 0 {
		head := p.pending[0]
		if err := p.client.PushDelta(p.id, head.seq, head.delta); err != nil {
			return err
		}
		p.pending = p.pending[1:]
		p.acked.Merge(head.delta)
		p.Pushes++
	}
	return nil
}
