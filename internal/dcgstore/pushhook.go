package dcgstore

import (
	"gocbs/internal/profile"
	"gocbs/internal/vm"
)

// TickPusher streams a profiler's growing DCG to a cbsd daemon from
// inside a running VM: every Every timer ticks it pushes the delta
// accumulated since the previous push. Install it alongside the
// collecting profiler via profiler.Combine, and call Flush after the
// run for the final increment. Push failures are recorded in Err (the
// first one wins) and stop further pushing rather than perturbing the
// workload with repeated timeouts.
type TickPusher struct {
	// Every is the tick interval between pushes; <= 0 disables
	// periodic pushing (only Flush sends).
	Every int
	// Err holds the first push failure.
	Err error

	graph  *profile.DCG
	pusher *DeltaPusher
	ticks  int
}

var (
	_ vm.Profiler     = (*TickPusher)(nil)
	_ vm.TickListener = (*TickPusher)(nil)
)

// NewTickPusher returns a pusher streaming graph to client every
// `every` ticks.
func NewTickPusher(client *Client, graph *profile.DCG, every int) *TickPusher {
	return &TickPusher{Every: every, graph: graph, pusher: NewDeltaPusher(client)}
}

// Name implements vm.Profiler.
func (t *TickPusher) Name() string { return "dcg-push" }

// OnTimerTick implements vm.TickListener.
func (t *TickPusher) OnTimerTick(*vm.VM) {
	if t.Every <= 0 || t.Err != nil {
		return
	}
	t.ticks++
	if t.ticks%t.Every != 0 {
		return
	}
	if err := t.pusher.Push(t.graph); err != nil {
		t.Err = err
	}
}

// Flush pushes the final increment and returns the first error the
// pusher hit (mid-run or now).
func (t *TickPusher) Flush() error {
	if t.Err == nil {
		t.Err = t.pusher.Push(t.graph)
	}
	return t.Err
}

// Pushes reports how many non-empty increments were actually sent.
func (t *TickPusher) Pushes() int { return t.pusher.Pushes }
