package dcgstore

import (
	"gocbs/internal/profile"
	"gocbs/internal/vm"
)

// TickPusher streams a profiler's growing DCG to a cbsd daemon from
// inside a running VM: every Every timer ticks it pushes the delta
// accumulated since the previous push. Install it alongside the
// collecting profiler via profiler.Combine, and call Flush after the
// run for the final increment.
//
// A failed push no longer disables the pusher: the increment stays
// queued in the underlying DeltaPusher (frozen with its sequence
// stamp) and is retried, ahead of newer increments, on the next tick —
// a daemon that comes back mid-run receives the full graph. Only after
// GiveUpAfter consecutive failed ticks does the pusher stop trying, so
// a daemon that is down for good does not tax the workload with
// timeouts forever. Flush always makes a final attempt, even after a
// give-up.
type TickPusher struct {
	// Every is the tick interval between pushes; <= 0 disables
	// periodic pushing (only Flush sends).
	Every int
	// GiveUpAfter stops periodic pushing after this many consecutive
	// failed ticks; 0 means never give up. NewTickPusher sets
	// DefaultGiveUpAfter.
	GiveUpAfter int
	// Err holds the most recent push failure; it is cleared by the
	// next success.
	Err error
	// Failures counts consecutive failed pushes (reset on success).
	Failures int

	graph    *profile.DCG
	pusher   *DeltaPusher
	ticks    int
	disabled bool
}

// DefaultGiveUpAfter is how many consecutive failed ticks NewTickPusher
// tolerates before periodic pushing stops.
const DefaultGiveUpAfter = 10

var (
	_ vm.Profiler     = (*TickPusher)(nil)
	_ vm.TickListener = (*TickPusher)(nil)
)

// NewTickPusher returns a pusher streaming graph to client every
// `every` ticks.
func NewTickPusher(client *Client, graph *profile.DCG, every int) *TickPusher {
	return &TickPusher{
		Every:       every,
		GiveUpAfter: DefaultGiveUpAfter,
		graph:       graph,
		pusher:      NewDeltaPusher(client),
	}
}

// Name implements vm.Profiler.
func (t *TickPusher) Name() string { return "dcg-push" }

// OnTimerTick implements vm.TickListener.
func (t *TickPusher) OnTimerTick(*vm.VM) {
	if t.Every <= 0 || t.disabled {
		return
	}
	t.ticks++
	if t.ticks%t.Every != 0 {
		return
	}
	t.attempt()
}

// attempt makes one push and updates the failure bookkeeping.
func (t *TickPusher) attempt() {
	if err := t.pusher.Push(t.graph); err != nil {
		t.Err = err
		t.Failures++
		if t.GiveUpAfter > 0 && t.Failures >= t.GiveUpAfter {
			t.disabled = true
		}
		return
	}
	t.Err = nil
	t.Failures = 0
}

// Flush pushes the final increment (plus any still-pending ones) and
// returns the resulting error state. It always tries, even if periodic
// pushing gave up mid-run.
func (t *TickPusher) Flush() error {
	t.attempt()
	return t.Err
}

// Pushes reports how many non-empty increments were acknowledged.
func (t *TickPusher) Pushes() int { return t.pusher.Pushes }

// Pending reports how many increments are still awaiting
// acknowledgement (non-zero after a run whose daemon was unreachable).
func (t *TickPusher) Pending() int { return t.pusher.Pending() }
