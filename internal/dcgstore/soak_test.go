package dcgstore

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"gocbs/internal/profile"
)

// TestConcurrentSoak is the store's race soak: K goroutines hammer the
// store with a mix of single samples, bulk merges, lock-free reads,
// snapshots, and syncs, and the final state must equal a serial
// reference merge of exactly the same contributions. Run under
// `go test -race` (wired into `make test-race`).
func TestConcurrentSoak(t *testing.T) {
	const (
		K     = 16  // writer goroutines
		M     = 400 // distinct edges per writer batch space
		batch = 50  // merges per writer
	)
	s := New(DefaultShards)

	// Pre-generate each writer's work deterministically so the serial
	// reference can replay it.
	type work struct {
		singles []profile.Edge
		bulks   []*profile.DCG
	}
	jobs := make([]work, K)
	for k := range jobs {
		rng := rand.New(rand.NewSource(int64(1000 + k)))
		for i := 0; i < M; i++ {
			jobs[k].singles = append(jobs[k].singles, profile.Edge{
				Caller: rng.Intn(40), Site: rng.Intn(60), Callee: rng.Intn(40),
			})
		}
		for b := 0; b < batch; b++ {
			g := profile.NewDCG()
			for i := 0; i < 20; i++ {
				g.AddSample(profile.Edge{
					Caller: rng.Intn(40), Site: rng.Intn(60), Callee: rng.Intn(40),
				}, float64(1+rng.Intn(5)))
			}
			jobs[k].bulks = append(jobs[k].bulks, g)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: exercise the lock-free read path and the
	// consistent snapshot path while writers run.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := profile.Edge{Caller: r, Site: r, Callee: r}
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Weight(probe)
				_ = s.TotalWeight()
				_ = s.NumEdges()
				if r == 0 {
					snap := s.Snapshot()
					// A consistent snapshot's total must equal the sum
					// of its edge weights at all times.
					var sum float64
					for _, e := range snap.Edges() {
						sum += snap.Weight(e)
					}
					if d := sum - snap.Total(); d > 1e-6 || d < -1e-6 {
						t.Errorf("inconsistent snapshot: sum %v vs total %v", sum, snap.Total())
						return
					}
				} else {
					s.Sync()
				}
			}
		}(r)
	}
	var writers sync.WaitGroup
	for k := 0; k < K; k++ {
		writers.Add(1)
		go func(k int) {
			defer writers.Done()
			for i, e := range jobs[k].singles {
				s.AddSample(e, float64(1+i%3))
			}
			for _, g := range jobs[k].bulks {
				s.MergeDCG(g)
			}
		}(k)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	// Serial reference over the identical work.
	ref := profile.NewDCG()
	for k := range jobs {
		for i, e := range jobs[k].singles {
			ref.AddSample(e, float64(1+i%3))
		}
		for _, g := range jobs[k].bulks {
			ref.Merge(g)
		}
	}

	got := s.Snapshot()
	if got.NumEdges() != ref.NumEdges() {
		t.Fatalf("edges: %d vs serial %d", got.NumEdges(), ref.NumEdges())
	}
	// Weights are sums of the same float64 terms in a different order;
	// all terms are small integers here, so sums are exact and the
	// canonical serializations must be byte-identical.
	var gb, rb bytes.Buffer
	if _, err := got.WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.WriteTo(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), rb.Bytes()) {
		t.Error("concurrent store state diverged from serial reference merge")
	}
	if st := s.Stats(); st.SamplesIngested != ref.Total() {
		t.Errorf("SamplesIngested = %v, want %v", st.SamplesIngested, ref.Total())
	}
}

// TestConcurrentDecaySoak interleaves decay epochs with merges and
// checks invariants (no negative weights, snapshot self-consistency)
// rather than exact values, since epoch timing is scheduling-dependent.
func TestConcurrentDecaySoak(t *testing.T) {
	s := New(8)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(k)))
			for i := 0; i < 200; i++ {
				g := profile.NewDCG()
				for j := 0; j < 10; j++ {
					g.AddSample(profile.Edge{Caller: rng.Intn(20), Site: rng.Intn(30), Callee: rng.Intn(20)}, 1)
				}
				s.MergeDCG(g)
				if i%50 == 0 {
					s.Decay(0.5, 0.01)
				}
			}
		}(k)
	}
	wg.Wait()
	snap := s.Snapshot()
	var sum float64
	for _, e := range snap.Edges() {
		w := snap.Weight(e)
		if w <= 0 {
			t.Fatalf("edge %v has non-positive weight %v", e, w)
		}
		sum += w
	}
	if d := sum - snap.Total(); d > 1e-6 || d < -1e-6 {
		t.Errorf("snapshot sum %v vs total %v", sum, snap.Total())
	}
	if s.Epoch() == 0 {
		t.Error("no decay epoch completed")
	}
}
