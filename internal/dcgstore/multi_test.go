package dcgstore

import (
	"bytes"
	"os"
	"testing"
	"time"

	"gocbs/internal/api"
	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/profile"
)

func compileBench(t *testing.T, name string) *bytecode.Program {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("no benchmark %q", name)
	}
	p, err := b.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return p
}

// upgrade applies the canonical behaviour-preserving build change used
// across this package's version tests: one extra unused constant on the
// entry method. The program still runs identically, but its version —
// and exactly one method fingerprint — changes.
func upgrade(p *bytecode.Program) *bytecode.Program {
	q := p.Clone()
	q.Methods[q.Entry.ID].Consts = append(q.Methods[q.Entry.ID].Consts, 0x5eed)
	return q
}

func dcgOf(samples ...[4]int) *profile.DCG {
	g := profile.NewDCG()
	for _, s := range samples {
		g.AddSample(profile.Edge{Caller: s[0], Site: s[1], Callee: s[2]}, float64(s[3]))
	}
	return g
}

func dcgBytesOf(t *testing.T, g *profile.DCG) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// TestCrossVersionAliasingRegression pins the bug this PR exists to
// fix. A plain Store merges pushes from two different builds of
// "compress" into one graph: method IDs from build B land on build A's
// edges and the aggregate equals neither build's truth. A Multi keyed
// by (program, version) keeps the two builds' graphs separate and each
// one exactly equals what its own pushers sent.
func TestCrossVersionAliasingRegression(t *testing.T) {
	// Build A says edge (1, 0, 2) is hot; build B reuses method ID 1
	// for a different method and says (1, 0, 3) is hot.
	fromA := dcgOf([4]int{1, 0, 2, 100})
	fromB := dcgOf([4]int{1, 0, 3, 40})

	// Old behaviour: one shared store, name-only identity.
	flat := New(4)
	flat.MergeDCGFrom("vm-a", 1, fromA)
	flat.MergeDCGFrom("vm-b", 1, fromB)
	merged := flat.Snapshot()
	if got := dcgBytesOf(t, merged); bytes.Equal(got, dcgBytesOf(t, fromA)) ||
		bytes.Equal(got, dcgBytesOf(t, fromB)) {
		t.Fatal("expected the flat store to corrupt the aggregate (neither build's truth)")
	}
	// The corruption is silent: both builds' weight is present, fused
	// under aliased IDs.
	if merged.Total() != fromA.Total()+fromB.Total() {
		t.Fatalf("flat store total %v, want %v", merged.Total(), fromA.Total()+fromB.Total())
	}

	// New behaviour: version-scoped substores, no aliasing.
	m := NewMulti(4)
	keyA := api.ProgramKey{Program: "compress", Version: "00000000000000aa"}
	keyB := api.ProgramKey{Program: "compress", Version: "00000000000000bb"}
	m.For(keyA).MergeDCGFrom("vm-a", 1, fromA)
	m.For(keyB).MergeDCGFrom("vm-b", 1, fromB)
	if got := dcgBytesOf(t, m.Lookup(keyA).Snapshot()); !bytes.Equal(got, dcgBytesOf(t, fromA)) {
		t.Fatal("version A's graph is not exactly what A pushed")
	}
	if got := dcgBytesOf(t, m.Lookup(keyB).Snapshot()); !bytes.Equal(got, dcgBytesOf(t, fromB)) {
		t.Fatal("version B's graph is not exactly what B pushed")
	}
	// The cross-version merged view still reports total mass.
	if got := m.MergedSnapshot().Total(); got != fromA.Total()+fromB.Total() {
		t.Fatalf("merged snapshot total %v", got)
	}
}

func TestMultiDefaultAndBounds(t *testing.T) {
	m := NewMulti(2)
	if m.For(api.ProgramKey{}) != m.Default() {
		t.Fatal("zero key must select the default substore")
	}
	for _, bad := range []api.ProgramKey{
		{Program: "", Version: "00"},
		{Program: "p", Version: ""},
		{Program: "p", Version: "XYZ"},
		{Program: "a@b", Version: "00"},
		{Program: "a/b", Version: "00"},
	} {
		if m.For(bad) != nil {
			t.Fatalf("malformed key %+v accepted", bad)
		}
	}
	// The ledger is bounded.
	for i := 0; i < MaxProgramKeys; i++ {
		if m.For(api.ProgramKey{Program: "p", Version: versionHex(i)}) == nil {
			t.Fatalf("key %d refused below the cap", i)
		}
	}
	if m.For(api.ProgramKey{Program: "p", Version: versionHex(MaxProgramKeys)}) != nil {
		t.Fatal("ledger accepted a key past the cap")
	}
	if m.NumKeys() != MaxProgramKeys {
		t.Fatalf("NumKeys = %d", m.NumKeys())
	}
}

func versionHex(i int) string {
	const hexd = "0123456789abcdef"
	return string([]byte{
		hexd[(i>>12)&0xf], hexd[(i>>8)&0xf], hexd[(i>>4)&0xf], hexd[i&0xf],
	})
}

func TestCarryForwardKeepsUnchangedMethodsOnly(t *testing.T) {
	p1 := compileBench(t, "compress")

	// Pick two sites with distinct owners; the second owner is the
	// method the upgrade will touch.
	goodSite, badSite := -1, -1
	unchangedA, changed := -1, -1
	for s := 0; s < p1.NumCallSites; s++ {
		if p1.SiteOwner[s] == nil {
			continue
		}
		id := p1.SiteOwner[s].ID
		if goodSite < 0 {
			goodSite, unchangedA = s, id
		} else if id != unchangedA {
			badSite, changed = s, id
			break
		}
	}
	if badSite < 0 {
		t.Fatal("benchmark has fewer than two site owners")
	}
	unchangedB := -1
	for id := range p1.Methods {
		if id != changed && id != unchangedA {
			unchangedB = id
			break
		}
	}

	p2 := p1.Clone()
	p2.Methods[changed].Consts = append(p2.Methods[changed].Consts, 0x5eed)
	m1 := p1.BuildManifest("compress")
	m2 := p2.BuildManifest("compress")

	old := profile.NewDCG()
	old.AddSample(profile.Edge{Caller: unchangedA, Site: goodSite, Callee: unchangedB}, 50)
	old.AddSample(profile.Edge{Caller: changed, Site: badSite, Callee: unchangedB}, 30)
	old.AddSample(profile.Edge{Caller: unchangedA, Site: goodSite, Callee: changed}, 20)

	carried := CarryForward(old, m1, m2)
	// Only the edge whose caller, callee, AND site owner are all
	// unchanged survives; the upgrade transform moves no IDs, so it
	// survives verbatim.
	if carried.NumEdges() != 1 || carried.Total() != 50 {
		t.Fatalf("carried %d edges / weight %v, want 1 / 50", carried.NumEdges(), carried.Total())
	}
	if w := carried.Weight(profile.Edge{Caller: unchangedA, Site: goodSite, Callee: unchangedB}); w != 50 {
		t.Fatalf("surviving edge weight %v", w)
	}
	// Nil inputs carry nothing.
	if g := CarryForward(nil, m1, m2); g.NumEdges() != 0 {
		t.Fatal("nil graph carried edges")
	}
	if g := CarryForward(old, nil, m2); g.NumEdges() != 0 {
		t.Fatal("nil manifest carried edges")
	}
}

func TestRegisterManifestCarriesForwardOnce(t *testing.T) {
	p1 := compileBench(t, "compress")
	p2 := upgrade(p1)
	man1 := p1.BuildManifest("compress")
	man2 := p2.BuildManifest("compress")
	key1 := api.ProgramKey{Program: "compress", Version: man1.Version}
	key2 := api.ProgramKey{Program: "compress", Version: man2.Version}

	m := NewMulti(4)
	if _, _, err := m.RegisterManifest(man1); err != nil {
		t.Fatalf("register v1: %v", err)
	}
	if m.LatestVersion("compress") != man1.Version {
		t.Fatal("succession not established")
	}

	// Profile mass for v1: an edge whose caller/site-owner/callee all
	// avoid the entry method (the one the upgrade changes).
	site, caller := -1, -1
	for s := 0; s < p1.NumCallSites; s++ {
		if p1.SiteOwner[s] != nil && p1.SiteOwner[s].ID != p1.Entry.ID {
			site, caller = s, p1.SiteOwner[s].ID
			break
		}
	}
	if site < 0 {
		t.Fatal("no site owned by a non-entry method")
	}
	callee := -1
	for id := range p1.Methods {
		if id != p1.Entry.ID {
			callee = id
			break
		}
	}
	g := profile.NewDCG()
	g.AddSample(profile.Edge{Caller: caller, Site: site, Callee: callee}, 64)
	m.For(key1).MergeDCGFrom("vm", 1, g)

	edges, weight, err := m.RegisterManifest(man2)
	if err != nil {
		t.Fatalf("register v2: %v", err)
	}
	if edges != 1 || weight != 64 {
		t.Fatalf("carried (%d, %v), want (1, 64)", edges, weight)
	}
	if m.LatestVersion("compress") != man2.Version {
		t.Fatal("succession did not advance")
	}
	if got := m.Lookup(key2).Snapshot().Total(); got != 64 {
		t.Fatalf("v2 substore total %v", got)
	}
	// Idempotent: a retried registration must not double the carry.
	edges, weight, err = m.RegisterManifest(man2)
	if err != nil || edges != 1 || weight != 64 {
		t.Fatalf("re-register: (%d, %v, %v)", edges, weight, err)
	}
	if got := m.Lookup(key2).Snapshot().Total(); got != 64 {
		t.Fatalf("re-register doubled the carry: total %v", got)
	}
	// Conservation bookkeeping survives: carried graph is recorded.
	if c := m.Carried(key2); c == nil || c.Total() != 64 {
		t.Fatal("carried graph not recorded")
	}
}

func TestMultiCheckpointRoundTrip(t *testing.T) {
	dir, err := os.MkdirTemp("", "multi-ckpt-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	p1 := compileBench(t, "compress")
	p2 := upgrade(p1)
	man1 := p1.BuildManifest("compress")
	man2 := p2.BuildManifest("compress")
	key1 := api.ProgramKey{Program: "compress", Version: man1.Version}
	key2 := api.ProgramKey{Program: "compress", Version: man2.Version}

	m := NewMulti(4)
	m.Default().MergeDCGFrom("legacy", 1, dcgOf([4]int{0, 0, 1, 5}))
	if _, _, err := m.RegisterManifest(man1); err != nil {
		t.Fatal(err)
	}
	m.For(key1).MergeDCGFrom("vm1", 3, dcgOf([4]int{1, 0, 2, 10}))
	if _, _, err := m.RegisterManifest(man2); err != nil {
		t.Fatal(err)
	}
	m.For(key2).MergeDCGFrom("vm2", 7, dcgOf([4]int{1, 0, 2, 4}))

	if err := SaveMultiCheckpoint(dir, m); err != nil {
		t.Fatalf("save: %v", err)
	}

	r := NewMulti(4)
	restored, err := RestoreMultiCheckpoint(r, dir)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !restored {
		t.Fatal("restore found nothing")
	}
	// Byte identity per substore (the restart-identity invariant's
	// store-level core).
	for _, key := range []api.ProgramKey{{}, key1, key2} {
		want := dcgBytesOf(t, m.Lookup(key).Snapshot())
		got := dcgBytesOf(t, r.Lookup(key).Snapshot())
		if !bytes.Equal(want, got) {
			t.Fatalf("substore %q not byte-identical after restore", key.String())
		}
	}
	// Sequences survive per substore: a retried increment still dedups.
	if r.Lookup(key1).MergeDCGFrom("vm1", 3, dcgOf([4]int{9, 9, 9, 1})) {
		t.Fatal("restored substore re-applied an already-acked increment")
	}
	if r.Lookup(key1).MergeDCGFrom("vm1", 4, dcgOf([4]int{9, 9, 9, 1})) != true {
		t.Fatal("restored substore refused the next increment")
	}
	// Manifests, carried graphs, and succession survive.
	if r.Manifest(key2) == nil || r.LatestVersion("compress") != man2.Version {
		t.Fatal("manifest/succession lost in restore")
	}
	if mc, rc := m.Carried(key2), r.Carried(key2); mc != nil {
		if rc == nil || rc.Total() != mc.Total() {
			t.Fatal("carried graph lost in restore")
		}
	}
	// A registration retry after restart must still be a no-op.
	before := r.Lookup(key2).Snapshot().Total()
	if _, _, err := r.RegisterManifest(man2); err != nil {
		t.Fatal(err)
	}
	if after := r.Lookup(key2).Snapshot().Total(); after != before {
		t.Fatalf("post-restore re-registration changed the graph: %v -> %v", before, after)
	}
}

// TestEvictRetiredVersions drives the version GC with a fake clock: a
// version superseded by a newer registration is evicted once it sits
// write-idle past the TTL, while the latest version of every program —
// and a program that was never superseded — survive any amount of
// idleness.
func TestEvictRetiredVersions(t *testing.T) {
	p1 := compileBench(t, "compress")
	p2 := upgrade(p1)
	man1 := p1.BuildManifest("compress")
	man2 := p2.BuildManifest("compress")
	key1 := api.ProgramKey{Program: "compress", Version: man1.Version}
	key2 := api.ProgramKey{Program: "compress", Version: man2.Version}
	soleKey := api.ProgramKey{Program: "db", Version: "00000000000000db"}

	m := NewMulti(2)
	now := time.Unix(1_000_000, 0)
	m.SetClock(func() time.Time { return now })

	if _, _, err := m.RegisterManifest(man1); err != nil {
		t.Fatal(err)
	}
	m.For(key1).MergeDCGFrom("vm1", 1, dcgOf([4]int{1, 0, 2, 10}))
	m.For(soleKey).MergeDCGFrom("vm2", 1, dcgOf([4]int{1, 0, 2, 5}))

	// v2 ships: v1 is now retired, but a straggler keeps pushing to it.
	now = now.Add(time.Hour)
	if _, _, err := m.RegisterManifest(man2); err != nil {
		t.Fatal(err)
	}
	m.For(key1).MergeDCGFrom("vm1", 2, dcgOf([4]int{1, 0, 2, 1}))

	// The straggler's push just touched v1 — nothing is idle enough.
	if n := m.EvictRetired(30 * time.Minute); n != 0 {
		t.Fatalf("evicted %d substores while the retired version was still hot", n)
	}

	// An hour of silence later the retired version goes; the latest
	// version and the never-superseded program stay, however idle.
	now = now.Add(time.Hour)
	if n := m.EvictRetired(30 * time.Minute); n != 1 {
		t.Fatalf("evicted %d substores, want 1", n)
	}
	if m.Lookup(key1) != nil || m.Manifest(key1) != nil {
		t.Fatal("retired version still present after eviction")
	}
	if m.Lookup(key2) == nil || m.Manifest(key2) == nil {
		t.Fatal("latest version evicted")
	}
	if m.Lookup(soleKey) == nil {
		t.Fatal("sole (never superseded) version evicted")
	}
	if got := m.Evicted(); got != 1 {
		t.Fatalf("Evicted() = %d, want 1", got)
	}
	// Relayed manifest order no longer mentions the evicted build.
	for _, man := range m.ManifestsInOrder() {
		if man.Version == man1.Version {
			t.Fatal("evicted manifest still relayed upstream")
		}
	}
	// Repeat sweeps are no-ops.
	if n := m.EvictRetired(30 * time.Minute); n != 0 {
		t.Fatalf("second sweep evicted %d substores", n)
	}
}
