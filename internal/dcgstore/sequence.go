package dcgstore

import (
	"sync"

	"gocbs/internal/api"
	"gocbs/internal/profile"
)

// Ingest idempotency.
//
// A pusher streams non-overlapping DCG increments to the daemon, but
// HTTP gives it only at-least-once delivery: a push whose response is
// lost (timeout, dropped connection) may or may not have been merged,
// and blindly re-sending it risks double-counting every edge in the
// delta. To make retries safe, each increment is stamped with a
// (pusher ID, sequence number) pair — headers on /ingest — and the
// store tracks the highest sequence applied per pusher. A pusher sends
// its increments strictly in order and retries one increment until it
// is acknowledged, so an arriving sequence at or below the high-water
// mark is an increment that was already applied (the response was
// lost) and is dropped instead of re-merged. Unstamped merges keep the
// old at-most-once semantics.
//
// The high-water marks are part of the checkpoint (see persist.go):
// restoring a graph without its sequences would let a post-restart
// retry double-count, and restoring sequences ahead of the graph would
// reject a legitimate increment. CheckpointState captures both under
// an exclusive lock so they always agree.

// Ingest headers shared by the push client and the cbsd daemon. The
// canonical definitions live in internal/api; these aliases keep the
// many existing dcgstore.Header* references compiling.
const (
	// HeaderPusher carries the pusher's stable ID on ingest requests.
	HeaderPusher = api.HeaderPusher
	// HeaderSeq carries the increment's sequence number (uint64 >= 1,
	// strictly increasing per pusher).
	HeaderSeq = api.HeaderSeq
)

// maxPusherIDLen bounds pusher IDs so a hostile client cannot grow the
// sequence table (or the checkpoint's sequence file) without bound per
// entry.
const maxPusherIDLen = 128

// ValidPusherID reports whether id is acceptable as a pusher identity:
// non-empty, at most maxPusherIDLen bytes, and limited to a charset
// that survives the line-oriented sequence checkpoint file (no spaces
// or control characters).
func ValidPusherID(id string) bool {
	if id == "" || len(id) > maxPusherIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// pusherSeq is one pusher's dedup state. Its mutex serializes the
// check-merge-advance critical section for that pusher only, so
// distinct pushers merge concurrently (shard striping still applies).
type pusherSeq struct {
	mu   sync.Mutex
	high uint64
}

// pusherState returns the tracked state for id, creating it on first
// use.
func (s *Store) pusherState(id string) *pusherSeq {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	ps := s.pushers[id]
	if ps == nil {
		ps = &pusherSeq{}
		s.pushers[id] = ps
	}
	return ps
}

// MergeDCGFrom merges g as increment seq from pusher (both taken from
// the /ingest headers) and reports whether the increment was applied.
// An empty pusher ID falls back to a plain unsequenced MergeDCG
// (always applied). A sequence at or below the pusher's high-water
// mark is a duplicate of an increment that already landed — the merge
// is skipped and false is returned, fixing the double count a
// retrying pusher would otherwise cause. Safe for concurrent use;
// increments from the same pusher serialize, distinct pushers do not.
func (s *Store) MergeDCGFrom(pusher string, seq uint64, g *profile.DCG) bool {
	if pusher == "" {
		s.MergeDCG(g)
		return true
	}
	s.ckptMu.RLock()
	defer s.ckptMu.RUnlock()
	ps := s.pusherState(pusher)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if seq <= ps.high {
		s.duplicates.Add(1)
		return false
	}
	s.MergeDCG(g)
	ps.high = seq
	return true
}

// Sequences returns a copy of every pusher's high-water mark.
func (s *Store) Sequences() map[string]uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	out := make(map[string]uint64, len(s.pushers))
	for id, ps := range s.pushers {
		ps.mu.Lock()
		out[id] = ps.high
		ps.mu.Unlock()
	}
	return out
}

// RestoreSequences seeds high-water marks from a loaded checkpoint.
// Existing marks are only ever raised, so restoring cannot reopen a
// window for an already-deduplicated increment.
func (s *Store) RestoreSequences(seqs map[string]uint64) {
	for id, high := range seqs {
		ps := s.pusherState(id)
		ps.mu.Lock()
		if high > ps.high {
			ps.high = high
		}
		ps.mu.Unlock()
	}
}

// CheckpointState returns a mutually consistent (graph, sequences)
// pair: the exclusive lock excludes every in-flight sequenced merge,
// so the snapshot contains an increment if and only if the sequence
// map records it. Unsequenced merges may still interleave — they carry
// no exactness contract.
func (s *Store) CheckpointState() (*profile.DCG, map[string]uint64) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.Snapshot(), s.Sequences()
}
