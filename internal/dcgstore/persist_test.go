package dcgstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gocbs/internal/profile"
)

// canonical returns the graph's canonical serialization for
// byte-identity checks.
func canonical(t *testing.T, g *profile.DCG) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := g.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestCheckpointRoundTripIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s := New(8)
	inc := profile.NewDCG()
	inc.AddSample(edge(1, 2, 3), 4.5)
	inc.AddSample(edge(7, 8, 9), 0.25)
	s.MergeDCGFrom("p-a", 3, inc)
	s.MergeDCGFrom("p-b", 11, inc)
	s.AddSample(edge(5, 5, 5), 2) // unsequenced weight persists too

	if err := SaveCheckpoint(dir, s); err != nil {
		t.Fatal(err)
	}
	g, seqs, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(t, s.Snapshot())
	if !bytes.Equal(canonical(t, g), want) {
		t.Error("loaded graph is not byte-identical to the checkpointed snapshot")
	}
	if seqs["p-a"] != 3 || seqs["p-b"] != 11 || len(seqs) != 2 {
		t.Errorf("loaded sequences %v, want p-a:3 p-b:11", seqs)
	}

	// A restarted store restored from the checkpoint serves the same
	// snapshot and keeps deduplicating the old pushers' retries.
	fresh := New(8)
	loaded, err := RestoreCheckpoint(fresh, dir)
	if err != nil || !loaded {
		t.Fatalf("RestoreCheckpoint = %v, %v", loaded, err)
	}
	if !bytes.Equal(canonical(t, fresh.Snapshot()), want) {
		t.Error("restored store snapshot differs from pre-restart snapshot")
	}
	if fresh.MergeDCGFrom("p-a", 3, inc) {
		t.Error("retry of a pre-restart increment was applied after restore")
	}
	if !fresh.MergeDCGFrom("p-a", 4, inc) {
		t.Error("next increment after restore rejected")
	}
}

func TestLoadCheckpointMissingIsFreshStart(t *testing.T) {
	g, seqs, err := LoadCheckpoint(filepath.Join(t.TempDir(), "never-written"))
	if g != nil || seqs != nil || err != nil {
		t.Errorf("LoadCheckpoint(missing) = %v, %v, %v; want nil, nil, nil", g, seqs, err)
	}
}

func TestLoadCheckpointGraphWithoutSequencesTolerated(t *testing.T) {
	dir := t.TempDir()
	s := New(4)
	s.AddSample(edge(1, 1, 1), 1)
	if err := SaveCheckpoint(dir, s); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, CheckpointSeqFile)); err != nil {
		t.Fatal(err)
	}
	g, seqs, err := LoadCheckpoint(dir)
	if err != nil || g == nil || len(seqs) != 0 {
		t.Errorf("LoadCheckpoint without seq file = %v, %v, %v", g, seqs, err)
	}
}

func TestLoadCheckpointRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s := New(4)
	s.AddSample(edge(1, 1, 1), 1)
	if err := SaveCheckpoint(dir, s); err != nil {
		t.Fatal(err)
	}
	// Corrupt graph: must fail loudly, not load garbage weights.
	if err := os.WriteFile(filepath.Join(dir, CheckpointGraphFile), []byte("not a DCG"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(dir); err == nil {
		t.Error("corrupt graph file loaded without error")
	}
	// Restore the graph, corrupt the sequence file instead.
	if err := SaveCheckpoint(dir, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, CheckpointSeqFile), []byte("cbsd-seq v1\nbroken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(dir); err == nil {
		t.Error("corrupt sequence file loaded without error")
	}
}

func TestSaveCheckpointReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	s := New(4)
	s.AddSample(edge(1, 1, 1), 1)
	if err := SaveCheckpoint(dir, s); err != nil {
		t.Fatal(err)
	}
	s.AddSample(edge(2, 2, 2), 2)
	if err := SaveCheckpoint(dir, s); err != nil {
		t.Fatal(err)
	}
	g, _, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, g), canonical(t, s.Snapshot())) {
		t.Error("second checkpoint did not replace the first")
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != CheckpointGraphFile && e.Name() != CheckpointSeqFile {
			t.Errorf("unexpected file %q in state dir", e.Name())
		}
	}
}
