package dcgstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gocbs/internal/api"
	"gocbs/internal/bytecode"
	"gocbs/internal/profile"
)

// Multi checkpointing.
//
// The default substore keeps the pre-versioning file pair
// (store.dcgb + pushers.seq) so a state directory written by an older
// daemon restores unchanged. Each keyed substore adds its own pair
// named by the canonical "program@version" key — '@' appears in
// neither the program-name nor version alphabet, so the mapping between
// keys and file names is a bijection — plus the registered manifest and
// the carried-forward graph (kept so per-version conservation
// accounting survives a restart). An index file commits the key set:
//
//	graph-<program>@<version>.dcgb     the substore graph
//	seqs-<program>@<version>.seq       its per-pusher high-water marks
//	manifest-<program>@<version>.json  the registered manifest, if any
//	carried-<program>@<version>.dcgb   the carried-in graph, if any
//	versions.json                      key list + per-program succession
//
// Per-substore, sequences are written before the graph for the same
// reason SaveCheckpoint orders them that way: a crash between the two
// renames must only ever drop a retried increment, never double-count
// one. The index is written last; a crash before it leaves orphan
// substore files that the next restore simply ignores.

// MultiIndexFile is the keyed-checkpoint index inside a state
// directory.
const MultiIndexFile = "versions.json"

type multiIndex struct {
	Keys   []api.ProgramKey  `json:"keys"`
	Latest map[string]string `json:"latest"`
}

func keyFile(prefix string, key api.ProgramKey, ext string) string {
	return prefix + "-" + key.String() + ext
}

// SaveMultiCheckpoint writes a checkpoint of the default substore (the
// legacy file pair) and every keyed substore into dir.
func SaveMultiCheckpoint(dir string, m *Multi) error {
	if err := SaveCheckpoint(dir, m.Default()); err != nil {
		return err
	}
	keys := m.Keys()
	for _, key := range keys {
		sub := m.Lookup(key)
		if sub == nil {
			continue
		}
		g, seqs := sub.CheckpointState()
		if err := writeFileAtomic(dir, keyFile("seqs", key, ".seq"), func(w io.Writer) error {
			return writeSequences(w, seqs)
		}); err != nil {
			return fmt.Errorf("checkpoint %s sequences: %w", key.String(), err)
		}
		if err := writeFileAtomic(dir, keyFile("graph", key, ".dcgb"), func(w io.Writer) error {
			_, err := g.WriteTo(w)
			return err
		}); err != nil {
			return fmt.Errorf("checkpoint %s graph: %w", key.String(), err)
		}
		if man := m.Manifest(key); man != nil {
			if err := writeFileAtomic(dir, keyFile("manifest", key, ".json"), func(w io.Writer) error {
				_, err := w.Write(man.Encode())
				return err
			}); err != nil {
				return fmt.Errorf("checkpoint %s manifest: %w", key.String(), err)
			}
		}
		if c := m.Carried(key); c != nil {
			if err := writeFileAtomic(dir, keyFile("carried", key, ".dcgb"), func(w io.Writer) error {
				_, err := c.WriteTo(w)
				return err
			}); err != nil {
				return fmt.Errorf("checkpoint %s carried: %w", key.String(), err)
			}
		}
	}
	idx := multiIndex{Keys: keys, Latest: make(map[string]string)}
	m.mu.RLock()
	for p, v := range m.latest {
		idx.Latest[p] = v
	}
	m.mu.RUnlock()
	if err := writeFileAtomic(dir, MultiIndexFile, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(idx)
	}); err != nil {
		return fmt.Errorf("checkpoint index: %w", err)
	}
	return nil
}

// readDCGFile loads one DCGB file, returning nil (no error) when the
// file does not exist.
func readDCGFile(path string) (*profile.DCG, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return profile.ReadDCG(bytes.NewReader(b))
}

// RestoreMultiCheckpoint loads dir's checkpoint — legacy pair plus
// keyed substores — into m and reports whether any checkpoint existed.
// Call it on an empty Multi before serving traffic. A corrupt keyed
// file is an error (like the legacy loader, silently dropping it would
// corrupt weights); a key listed in the index with no graph file is
// skipped.
func RestoreMultiCheckpoint(m *Multi, dir string) (bool, error) {
	restored, err := RestoreCheckpoint(m.Default(), dir)
	if err != nil {
		return restored, err
	}
	idxBytes, err := os.ReadFile(filepath.Join(dir, MultiIndexFile))
	if os.IsNotExist(err) {
		return restored, nil
	}
	if err != nil {
		return restored, fmt.Errorf("checkpoint index: %w", err)
	}
	var idx multiIndex
	if err := json.Unmarshal(idxBytes, &idx); err != nil {
		return restored, fmt.Errorf("checkpoint index %s: %w", MultiIndexFile, err)
	}
	for _, key := range idx.Keys {
		if !validKey(key) {
			return restored, fmt.Errorf("checkpoint index: bad key %q", key.String())
		}
		g, err := readDCGFile(filepath.Join(dir, keyFile("graph", key, ".dcgb")))
		if err != nil {
			return restored, fmt.Errorf("checkpoint %s graph: %w", key.String(), err)
		}
		if g == nil {
			continue
		}
		sub := m.For(key)
		if sub == nil {
			return restored, fmt.Errorf("checkpoint: program ledger full restoring %s", key.String())
		}
		sub.MergeDCG(g)
		if sf, err := os.Open(filepath.Join(dir, keyFile("seqs", key, ".seq"))); err == nil {
			seqs, serr := readSequences(sf)
			sf.Close()
			if serr != nil {
				return restored, fmt.Errorf("checkpoint %s sequences: %w", key.String(), serr)
			}
			sub.RestoreSequences(seqs)
		} else if !os.IsNotExist(err) {
			return restored, fmt.Errorf("checkpoint %s sequences: %w", key.String(), err)
		}
		if mb, err := os.ReadFile(filepath.Join(dir, keyFile("manifest", key, ".json"))); err == nil {
			man, merr := bytecode.DecodeManifest(bytes.NewReader(mb))
			if merr != nil {
				return restored, fmt.Errorf("checkpoint %s manifest: %w", key.String(), merr)
			}
			m.mu.Lock()
			m.manifests[key] = man
			m.manifestOrder = append(m.manifestOrder, key)
			m.mu.Unlock()
		} else if !os.IsNotExist(err) {
			return restored, fmt.Errorf("checkpoint %s manifest: %w", key.String(), err)
		}
		c, err := readDCGFile(filepath.Join(dir, keyFile("carried", key, ".dcgb")))
		if err != nil {
			return restored, fmt.Errorf("checkpoint %s carried: %w", key.String(), err)
		}
		if c != nil {
			m.mu.Lock()
			m.carried[key] = c
			m.mu.Unlock()
		}
		restored = true
	}
	m.mu.Lock()
	for p, v := range idx.Latest {
		if len(p) > 0 && len(p) <= 64 && api.ValidProgramVersion(v) {
			m.latest[p] = v
		}
	}
	m.mu.Unlock()
	return restored, nil
}
