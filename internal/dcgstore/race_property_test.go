package dcgstore

import (
	"math"
	"sync"
	"testing"

	"gocbs/internal/profile"
)

// TestSnapshotNeverSplitsMerge is the regression test for cross-shard
// merge atomicity. One writer repeatedly merges the same multi-shard
// graph G; concurrent Snapshot calls must only ever observe an exact
// multiple of G — per edge and in total. Before MergeDCG locked all
// touched shards simultaneously, a snapshot could catch a merge with
// some shards applied and others not, and this test caught it.
func TestSnapshotNeverSplitsMerge(t *testing.T) {
	s := New(8)

	// A graph guaranteed to span several shards: enough distinct edges
	// that at least two land in different shards no matter the hash.
	g := profile.NewDCG()
	const edges = 32
	for i := 0; i < edges; i++ {
		g.AddSample(profile.Edge{Caller: i, Site: 100 + i, Callee: 200 + i}, 1)
	}

	const merges = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < merges; i++ {
			s.MergeDCG(g)
		}
	}()

	for {
		select {
		case <-done:
			if got := s.Snapshot().Total(); got != float64(edges*merges) {
				t.Fatalf("final total %v, want %v", got, edges*merges)
			}
			return
		default:
		}
		snap := s.Snapshot()
		// Every edge of G must have the identical weight n (the number
		// of merges this cut observed), and the total must be n*|G|.
		n := snap.Weight(profile.Edge{Caller: 0, Site: 100, Callee: 200})
		if n != math.Trunc(n) {
			t.Fatalf("edge weight %v is not an integral merge count", n)
		}
		for i := 0; i < edges; i++ {
			e := profile.Edge{Caller: i, Site: 100 + i, Callee: 200 + i}
			if w := snap.Weight(e); w != n {
				t.Fatalf("torn merge observed: edge %d has weight %v while edge 0 has %v", i, w, n)
			}
		}
		if total := snap.Total(); total != n*edges {
			t.Fatalf("torn merge observed: total %v with per-edge weight %v", total, n)
		}
	}
}

// TestDecayRacingWritersProperty is the decay-epoch property test:
// concurrent AddSample writers, Snapshot readers, and a decayer run
// against one store, and every observation must satisfy
//
//   - internal consistency: a snapshot's total equals the sum of its
//     edge weights (a consistent cut, not a mix of epochs), and
//   - the decay bound: the final total lies in
//     [ingested * factor^epochs, ingested] — decay only shrinks
//     weight, and no sample can be decayed more often than the number
//     of completed epochs.
//
// Run under -race (the Makefile's test-race target includes this
// package) this doubles as the memory-safety soak for Decay vs the
// write and snapshot paths.
func TestDecayRacingWritersProperty(t *testing.T) {
	const (
		writers       = 4
		perWriter     = 3_000
		sampleWeight  = 2.0
		decayFactor   = 0.5
		decayEpochs   = 5
		snapshotReads = 200
	)
	s := New(8)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := profile.Edge{Caller: w, Site: i % 97, Callee: (i * 7) % 89}
				s.AddSample(e, sampleWeight)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < decayEpochs; i++ {
			s.Decay(decayFactor, 0)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshotReads; i++ {
			snap := s.Snapshot()
			var sum float64
			for _, e := range snap.Edges() {
				w := snap.Weight(e)
				if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					t.Errorf("snapshot edge %v has invalid weight %v", e, w)
					return
				}
				sum += w
			}
			if total := snap.Total(); math.Abs(total-sum) > 1e-6*math.Max(1, sum) {
				t.Errorf("inconsistent snapshot: total %v != edge sum %v", total, sum)
				return
			}
		}
	}()
	wg.Wait()

	if got := s.Epoch(); got != decayEpochs {
		t.Fatalf("epochs completed = %d, want %d", got, decayEpochs)
	}
	ingested := float64(writers*perWriter) * sampleWeight
	if got := s.Stats().SamplesIngested; got != ingested {
		t.Fatalf("SamplesIngested = %v, want %v", got, ingested)
	}
	total := s.Snapshot().Total()
	lower := ingested * math.Pow(decayFactor, decayEpochs)
	if total < lower-1e-6 || total > ingested+1e-6 {
		t.Fatalf("final total %v outside decay bound [%v, %v]", total, lower, ingested)
	}
}
