package dcgstore

import (
	"bytes"
	"math"
	"testing"

	"gocbs/internal/profile"
)

func edge(c, s, t int) profile.Edge { return profile.Edge{Caller: c, Site: s, Callee: t} }

func TestNewRoundsShardsUpToPowerOfTwo(t *testing.T) {
	cases := map[int]int{-1: DefaultShards, 0: DefaultShards, 1: 1, 2: 2, 3: 4, 17: 32, 32: 32}
	for in, want := range cases {
		if got := New(in).NumShards(); got != want {
			t.Errorf("New(%d).NumShards() = %d, want %d", in, got, want)
		}
	}
}

func TestAddSampleAndLockFreeReads(t *testing.T) {
	s := New(4)
	s.AddSample(edge(1, 2, 3), 5)
	s.AddSample(edge(1, 2, 3), 0)  // ignored
	s.AddSample(edge(1, 2, 3), -1) // ignored
	s.AddSample(edge(4, 5, 6), 15)

	// Published snapshots may trail single-sample writes; Sync makes
	// the lock-free read path current.
	s.Sync()
	if w := s.Weight(edge(1, 2, 3)); w != 5 {
		t.Errorf("Weight = %v, want 5", w)
	}
	if tw := s.TotalWeight(); tw != 20 {
		t.Errorf("TotalWeight = %v, want 20", tw)
	}
	if n := s.NumEdges(); n != 2 {
		t.Errorf("NumEdges = %d, want 2", n)
	}
	if p := s.Percent(edge(4, 5, 6)); math.Abs(p-75) > 1e-12 {
		t.Errorf("Percent = %v, want 75", p)
	}
	if st := s.Stats(); st.SamplesIngested != 20 || st.Edges != 2 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestAddSamplePublishesAfterThreshold(t *testing.T) {
	s := New(1) // single shard so the write counter is easy to drive
	for i := 0; i < publishEvery; i++ {
		s.AddSample(edge(1, 1, 1), 1)
	}
	// publishEvery writes hit the auto-publish path: reads see them
	// without an intervening Sync or merge.
	if w := s.Weight(edge(1, 1, 1)); w != publishEvery {
		t.Errorf("after %d writes Weight = %v, want %d", publishEvery, w, publishEvery)
	}
}

func TestMergeDCGMatchesSerialMerge(t *testing.T) {
	a := profile.NewDCG()
	a.AddSample(edge(1, 2, 3), 4)
	a.AddSample(edge(2, 3, 4), 6)
	b := profile.NewDCG()
	b.AddSample(edge(1, 2, 3), 1)
	b.AddSample(edge(9, 9, 9), 2)

	s := New(8)
	s.MergeDCG(a)
	s.MergeDCG(b)
	s.MergeDCG(nil) // counted, harmless

	ref := profile.NewDCG()
	ref.Merge(a)
	ref.Merge(b)

	var sb, rb bytes.Buffer
	if _, err := s.Snapshot().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.WriteTo(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), rb.Bytes()) {
		t.Error("store snapshot diverged from serial merge")
	}
	if st := s.Stats(); st.Merges != 3 {
		t.Errorf("Merges = %d, want 3", st.Merges)
	}
	// Bulk merges publish immediately: lock-free reads are current.
	if w := s.Weight(edge(1, 2, 3)); w != 5 {
		t.Errorf("post-merge Weight = %v, want 5", w)
	}
}

func TestDecayEpochs(t *testing.T) {
	s := New(4)
	s.AddSample(edge(1, 1, 1), 100)
	s.AddSample(edge(2, 2, 2), 1)
	s.Sync()

	pruned := s.Decay(0.5, 1) // 1*0.5 <= 1 prunes the light edge
	if pruned != 1 {
		t.Errorf("pruned = %d, want 1", pruned)
	}
	if w := s.Weight(edge(1, 1, 1)); w != 50 {
		t.Errorf("decayed weight = %v, want 50", w)
	}
	if w := s.Weight(edge(2, 2, 2)); w != 0 {
		t.Errorf("pruned edge still weighs %v", w)
	}
	if tw := s.TotalWeight(); tw != 50 {
		t.Errorf("decayed total = %v, want 50", tw)
	}
	if s.Epoch() != 1 {
		t.Errorf("Epoch = %d, want 1", s.Epoch())
	}
	// Cumulative ingest stats are not rewritten by decay.
	if st := s.Stats(); st.SamplesIngested != 101 {
		t.Errorf("SamplesIngested = %v, want 101", st.SamplesIngested)
	}

	// Factor clamping: Decay(>1) must not inflate weights.
	s.Decay(2, 0)
	if w := s.Weight(edge(1, 1, 1)); w != 50 {
		t.Errorf("Decay(2) changed weight to %v", w)
	}
	// Decay(0) empties the store.
	s.Decay(0, 0)
	if s.NumEdges() != 0 || s.TotalWeight() != 0 {
		t.Errorf("Decay(0) left %d edges, total %v", s.NumEdges(), s.TotalWeight())
	}
}

func TestSnapshotIsConsistentAndDetached(t *testing.T) {
	s := New(4)
	s.AddSample(edge(1, 1, 1), 3)
	snap := s.Snapshot()
	s.AddSample(edge(1, 1, 1), 7) // must not leak into the snapshot
	if snap.Weight(edge(1, 1, 1)) != 3 || snap.Total() != 3 {
		t.Errorf("snapshot not detached: %v/%v", snap.Weight(edge(1, 1, 1)), snap.Total())
	}
}

func TestEdgeHashSpreadsConsecutiveIDs(t *testing.T) {
	s := New(8)
	hit := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		hit[edgeHash(edge(i, i+1, i+2))&s.mask] = true
	}
	if len(hit) < 6 {
		t.Errorf("64 consecutive edges landed on only %d of 8 shards", len(hit))
	}
}
