package dcgstore

import (
	"fmt"
	"sync"
	"testing"

	"gocbs/internal/profile"
)

func TestMergeDCGFromDeduplicatesRetries(t *testing.T) {
	s := New(4)
	inc := profile.NewDCG()
	inc.AddSample(edge(1, 2, 3), 5)

	if !s.MergeDCGFrom("p-a", 1, inc) {
		t.Fatal("first increment rejected")
	}
	// A retry of seq 1 (response lost) must not double-count.
	if s.MergeDCGFrom("p-a", 1, inc) {
		t.Error("retried seq 1 applied twice")
	}
	s.Sync()
	if w := s.Weight(edge(1, 2, 3)); w != 5 {
		t.Errorf("weight after retry = %v, want 5", w)
	}
	// The next sequence goes through; an older one never does.
	if !s.MergeDCGFrom("p-a", 2, inc) {
		t.Error("seq 2 rejected")
	}
	if s.MergeDCGFrom("p-a", 1, inc) {
		t.Error("stale seq 1 applied after seq 2")
	}
	// A different pusher has its own sequence space.
	if !s.MergeDCGFrom("p-b", 1, inc) {
		t.Error("other pusher's seq 1 rejected")
	}
	s.Sync()
	if w := s.Weight(edge(1, 2, 3)); w != 15 {
		t.Errorf("final weight = %v, want 15", w)
	}
	st := s.Stats()
	if st.Duplicates != 2 || st.Pushers != 2 {
		t.Errorf("Stats duplicates/pushers = %d/%d, want 2/2", st.Duplicates, st.Pushers)
	}
}

func TestMergeDCGFromUnstampedAlwaysApplies(t *testing.T) {
	s := New(4)
	inc := profile.NewDCG()
	inc.AddSample(edge(1, 1, 1), 1)
	for i := 0; i < 3; i++ {
		if !s.MergeDCGFrom("", 0, inc) {
			t.Fatal("unstamped merge rejected")
		}
	}
	s.Sync()
	if w := s.Weight(edge(1, 1, 1)); w != 3 {
		t.Errorf("weight = %v, want 3 (unstamped merges are at-least-once by design)", w)
	}
}

func TestValidPusherID(t *testing.T) {
	valid := []string{"p-1", "a", "host.example:8944", "A_b-c.d:e", "p-0123456789abcdef"}
	for _, id := range valid {
		if !ValidPusherID(id) {
			t.Errorf("ValidPusherID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "has space", "tab\there", "new\nline", "slash/y", "per%cent",
		string(make([]byte, maxPusherIDLen+1))}
	for _, id := range invalid {
		if ValidPusherID(id) {
			t.Errorf("ValidPusherID(%q) = true, want false", id)
		}
	}
}

func TestRestoreSequencesOnlyRaises(t *testing.T) {
	s := New(4)
	inc := profile.NewDCG()
	inc.AddSample(edge(1, 1, 1), 1)
	s.MergeDCGFrom("p", 5, inc)
	s.RestoreSequences(map[string]uint64{"p": 3, "q": 7})
	got := s.Sequences()
	if got["p"] != 5 || got["q"] != 7 {
		t.Errorf("Sequences = %v, want p:5 q:7", got)
	}
}

// TestConcurrentSequencedIngestWithRetries hammers the sequenced path
// from many pushers, each re-sending every increment several times (as
// an aggressive retry storm would), and checks the store equals the
// serial merge of each increment applied exactly once. Run under
// -race via `make test-race`.
func TestConcurrentSequencedIngestWithRetries(t *testing.T) {
	const (
		K    = 12 // pushers
		incs = 60 // increments per pusher
	)
	s := New(DefaultShards)

	// Each pusher k sends increments touching a pusher-specific edge
	// plus a shared edge, every one re-sent 3 times.
	increment := func(k, i int) *profile.DCG {
		g := profile.NewDCG()
		g.AddSample(edge(k, 0, k), float64(i+1))
		g.AddSample(edge(99, 99, 99), 1)
		return g
	}
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			id := fmt.Sprintf("p-%d", k)
			for i := 0; i < incs; i++ {
				g := increment(k, i)
				applied := 0
				for try := 0; try < 3; try++ {
					if s.MergeDCGFrom(id, uint64(i+1), g) {
						applied++
					}
				}
				if applied != 1 {
					t.Errorf("pusher %d seq %d applied %d times", k, i+1, applied)
					return
				}
			}
		}(k)
	}
	wg.Wait()

	ref := profile.NewDCG()
	for k := 0; k < K; k++ {
		for i := 0; i < incs; i++ {
			ref.Merge(increment(k, i))
		}
	}
	got := s.Snapshot()
	if got.NumEdges() != ref.NumEdges() || got.Total() != ref.Total() {
		t.Fatalf("store %d edges/%v weight, serial %d edges/%v weight",
			got.NumEdges(), got.Total(), ref.NumEdges(), ref.Total())
	}
	if w, want := got.Weight(edge(99, 99, 99)), float64(K*incs); w != want {
		t.Errorf("shared edge weight = %v, want %v", w, want)
	}
}

// TestCheckpointStateIsMutuallyConsistent takes checkpoints while
// sequenced merges run and asserts the invariant persistence relies
// on: for every pusher, the captured graph holds exactly the weight of
// the increments the captured sequence map records — never one without
// the other.
func TestCheckpointStateIsMutuallyConsistent(t *testing.T) {
	const K = 8
	s := New(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			id := fmt.Sprintf("p-%d", k)
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Every increment adds weight 1 to the pusher's own
				// edge, so weight(edge k) must always equal seqs[k].
				g := profile.NewDCG()
				g.AddSample(edge(k, 1, 1), 1)
				s.MergeDCGFrom(id, uint64(i), g)
			}
		}(k)
	}
	for n := 0; n < 200; n++ {
		g, seqs := s.CheckpointState()
		for k := 0; k < K; k++ {
			id := fmt.Sprintf("p-%d", k)
			if w, want := g.Weight(edge(k, 1, 1)), float64(seqs[id]); w != want {
				t.Fatalf("checkpoint %d: pusher %s graph weight %v vs sequence %v", n, id, w, want)
			}
		}
	}
	close(stop)
	wg.Wait()
}
