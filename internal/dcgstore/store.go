// Package dcgstore provides a sharded, concurrent-safe dynamic call
// graph store: the aggregation point where DCG snapshots collected by
// many VMs (the paper's per-VM profiles, scaled out to a fleet) are
// merged, decayed, and queried while ingestion continues.
//
// The store is lock-striped: edges are distributed over N shards by a
// mixed hash of the (caller, site, callee) triple, and each shard has
// its own mutex, weight map, and local total, so concurrent writers
// touching different shards never contend. Reads (Weight, Percent,
// TotalWeight, NumEdges) are lock-free: they only load each shard's
// last *published* immutable snapshot through an atomic pointer.
// Writers republish a shard's snapshot after every bulk merge and
// after every publishEvery single-sample writes, so lock-free reads
// trail writes by a bounded amount; Sync forces publication
// everywhere, and Snapshot locks all shards at once for a consistent
// point-in-time cut.
package dcgstore

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"gocbs/internal/profile"
)

// DefaultShards is the shard count used when New is given n <= 0.
// 32 shards keep cross-shard lock contention negligible for tens of
// concurrent pushers while keeping Snapshot's all-shards lock cheap.
const DefaultShards = 32

// publishEvery bounds how many AddSample writes a shard accepts before
// it republishes its read snapshot, i.e. how stale the lock-free read
// path can get between bulk merges.
const publishEvery = 256

// shardSnap is an immutable published view of one shard. Readers load
// it atomically and never mutate it; writers build a fresh copy.
type shardSnap struct {
	weights map[profile.Edge]float64
	total   float64
}

var emptySnap = &shardSnap{weights: map[profile.Edge]float64{}}

type shard struct {
	mu      sync.Mutex
	weights map[profile.Edge]float64
	total   float64
	dirty   int // writes since last publish
	snap    atomic.Pointer[shardSnap]
}

// publishLocked copies the live state into a fresh immutable snapshot.
// Callers must hold sh.mu.
func (sh *shard) publishLocked() {
	cp := make(map[profile.Edge]float64, len(sh.weights))
	for e, w := range sh.weights {
		cp[e] = w
	}
	sh.snap.Store(&shardSnap{weights: cp, total: sh.total})
	sh.dirty = 0
}

// Stats is a point-in-time summary of a store.
type Stats struct {
	Shards      int
	Edges       int
	TotalWeight float64
	// SamplesIngested is the cumulative weight ever added, before any
	// decay (AddSample + MergeDCG contributions).
	SamplesIngested float64
	// Merges counts MergeDCG calls.
	Merges uint64
	// Epoch counts completed decay epochs.
	Epoch uint64
	// Pushers is the number of distinct pusher IDs with a tracked
	// ingest sequence.
	Pushers int
	// Duplicates counts sequenced increments rejected as already
	// applied (retries whose first attempt actually landed).
	Duplicates uint64
}

// Store is the sharded concurrent DCG store. The zero value is not
// usable; call New.
type Store struct {
	shards []shard
	mask   uint64

	ingested atomicFloat64
	merges   atomic.Uint64
	epoch    atomic.Uint64

	// ckptMu makes a checkpoint's (graph, sequence) pair mutually
	// consistent: sequenced merges hold it shared for the whole
	// check-merge-advance critical section, and CheckpointState holds
	// it exclusively, so a checkpoint never captures a merge whose
	// high-water mark it missed (or vice versa). See sequence.go.
	ckptMu sync.RWMutex
	// seqMu guards the pushers map itself; each entry has its own lock.
	seqMu      sync.Mutex
	pushers    map[string]*pusherSeq
	duplicates atomic.Uint64
}

// New returns a store with at least n shards (rounded up to a power of
// two so shard selection is a mask; n <= 0 selects DefaultShards).
func New(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Store{
		shards:  make([]shard, size),
		mask:    uint64(size - 1),
		pushers: make(map[string]*pusherSeq),
	}
	for i := range s.shards {
		s.shards[i].weights = make(map[profile.Edge]float64)
		s.shards[i].snap.Store(emptySnap)
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// edgeHash mixes the three edge coordinates (splitmix64-style finalizer
// over a combination of the fields) so consecutive IDs spread across
// shards instead of striping.
func edgeHash(e profile.Edge) uint64 {
	h := uint64(int64(e.Caller))*0x9E3779B97F4A7C15 ^
		uint64(int64(e.Site))*0xBF58476D1CE4E5B9 ^
		uint64(int64(e.Callee))*0x94D049BB133111EB
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

func (s *Store) shardFor(e profile.Edge) *shard {
	return &s.shards[edgeHash(e)&s.mask]
}

// AddSample adds weight w to edge e; non-positive weights are ignored
// (matching profile.DCG.AddSample). Safe for concurrent use.
func (s *Store) AddSample(e profile.Edge, w float64) {
	if w <= 0 {
		return
	}
	sh := s.shardFor(e)
	sh.mu.Lock()
	sh.weights[e] += w
	sh.total += w
	sh.dirty++
	if sh.dirty >= publishEvery {
		sh.publishLocked()
	}
	sh.mu.Unlock()
	s.ingested.Add(w)
}

// MergeDCG bulk-merges a collected DCG snapshot into the store. Edges
// are grouped by shard first, then every touched shard is locked
// simultaneously — in index order, the same order lockAll uses, so
// merges cannot deadlock against Snapshot, Decay, or each other — the
// whole snapshot is applied, and each shard republishes its read view
// before the locks drop. Holding all touched shards at once is what
// makes Snapshot's consistency promise true: a concurrent Snapshot
// observes this merge fully applied or not at all, never split across
// shards. Zero-weight edges are skipped, mirroring profile.DCG.Merge.
// Safe for concurrent use; each edge's weight is the exact sum of all
// merged contributions.
func (s *Store) MergeDCG(g *profile.DCG) {
	if g == nil || g.NumEdges() == 0 {
		s.merges.Add(1)
		return
	}
	byShard := make(map[int][]profile.Edge, len(s.shards))
	for _, e := range g.Edges() {
		i := int(edgeHash(e) & s.mask)
		byShard[i] = append(byShard[i], e)
	}
	idxs := make([]int, 0, len(byShard))
	for i := range byShard {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	var added float64
	for _, i := range idxs {
		sh := &s.shards[i]
		for _, e := range byShard[i] {
			w := g.Weight(e)
			if w <= 0 {
				continue
			}
			sh.weights[e] += w
			sh.total += w
			added += w
		}
		sh.publishLocked()
	}
	for _, i := range idxs {
		s.shards[i].mu.Unlock()
	}
	s.ingested.Add(added)
	s.merges.Add(1)
}

// Weight returns e's weight as of the shard's last published snapshot.
// Lock-free: never blocks writers.
func (s *Store) Weight(e profile.Edge) float64 {
	return s.shardFor(e).snap.Load().weights[e]
}

// TotalWeight returns the total weight across all shards' published
// snapshots. Lock-free; under concurrent writes the per-shard
// snapshots may be from slightly different instants.
func (s *Store) TotalWeight() float64 {
	var t float64
	for i := range s.shards {
		t += s.shards[i].snap.Load().total
	}
	return t
}

// NumEdges returns the number of distinct edges across all published
// snapshots. Lock-free.
func (s *Store) NumEdges() int {
	var n int
	for i := range s.shards {
		n += len(s.shards[i].snap.Load().weights)
	}
	return n
}

// Percent returns e's published weight as a percentage (0–100) of the
// published total, the normalization the overlap metric uses.
// Lock-free.
func (s *Store) Percent(e profile.Edge) float64 {
	t := s.TotalWeight()
	if t == 0 {
		return 0
	}
	return s.Weight(e) / t * 100
}

// Sync republishes every shard's read snapshot, making the lock-free
// read path exactly current with all writes that completed before the
// call.
func (s *Store) Sync() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.publishLocked()
		sh.mu.Unlock()
	}
}

// lockAll acquires every shard lock in index order (a fixed order, so
// concurrent lockAll callers cannot deadlock) and returns the unlock
// function.
func (s *Store) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}
}

// Snapshot returns a consistent point-in-time copy of the whole store
// as a profile.DCG: all shards are locked simultaneously, so no merge
// is ever observed half-applied across shards. Each shard's read
// snapshot is republished while held.
func (s *Store) Snapshot() *profile.DCG {
	unlock := s.lockAll()
	defer unlock()
	g := profile.NewDCG()
	for i := range s.shards {
		sh := &s.shards[i]
		for e, w := range sh.weights {
			g.AddSample(e, w)
		}
		sh.publishLocked()
	}
	return g
}

// Decay completes one exponential-decay epoch: every weight is
// multiplied by factor (clamped to [0, 1]), edges whose decayed weight
// falls below prune are dropped, and shard totals are recomputed from
// the surviving edges. The whole epoch runs with all shards locked, so
// a concurrent Snapshot sees either the pre- or post-decay store,
// never a mix. Returns the number of edges pruned.
func (s *Store) Decay(factor, prune float64) int {
	if factor < 0 {
		factor = 0
	}
	if factor > 1 {
		factor = 1
	}
	unlock := s.lockAll()
	defer unlock()
	pruned := 0
	for i := range s.shards {
		sh := &s.shards[i]
		var total float64
		for e, w := range sh.weights {
			w *= factor
			if w <= prune || w <= 0 {
				delete(sh.weights, e)
				pruned++
				continue
			}
			sh.weights[e] = w
			total += w
		}
		sh.total = total
		sh.publishLocked()
	}
	s.epoch.Add(1)
	return pruned
}

// Epoch returns the number of completed decay epochs.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Version returns the store's bulk-mutation counters: MergeDCG calls
// applied and decay epochs completed. An unchanged (merges, epochs)
// pair means no bulk merge or decay has landed since, which lets the
// plan service serve cached plans without re-snapshotting the graph.
// Direct AddSample writes do not bump either counter; version-based
// caching is only sound for stores mutated through merges and decay
// (cbsd's ingest path is exactly that).
func (s *Store) Version() (merges, epochs uint64) {
	return s.merges.Load(), s.epoch.Load()
}

// Stats returns a lock-free summary built from published snapshots and
// the store's cumulative counters.
func (s *Store) Stats() Stats {
	s.seqMu.Lock()
	pushers := len(s.pushers)
	s.seqMu.Unlock()
	return Stats{
		Shards:          len(s.shards),
		Edges:           s.NumEdges(),
		TotalWeight:     s.TotalWeight(),
		SamplesIngested: s.ingested.Load(),
		Merges:          s.merges.Load(),
		Epoch:           s.epoch.Load(),
		Pushers:         pushers,
		Duplicates:      s.duplicates.Load(),
	}
}

// atomicFloat64 is a CAS-loop float64 accumulator (stdlib atomics have
// no float variant).
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (a *atomicFloat64) Add(delta float64) {
	for {
		old := a.bits.Load()
		next := math.Float64frombits(old) + delta
		if a.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (a *atomicFloat64) Load() float64 { return math.Float64frombits(a.bits.Load()) }
