module gocbs

go 1.22
