// Quickstart: compile an MJ program, run it under the CBS profiler,
// and inspect the dynamic call graph it collected.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gocbs/internal/mj"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

const src = `
	class Greeter {
		int greet(int who) { return who * 2; }
	}
	class LoudGreeter extends Greeter {
		int greet(int who) { return who * 10; }
	}
	int helper(int x) { return x + 1; }
	int main(int n) {
		Greeter quiet = new Greeter();
		Greeter loud = new LoudGreeter();
		int acc = 0;
		for (int i = 0; i < n; i = i + 1) {
			acc = acc + quiet.greet(i);              // hot virtual call
			if (i % 4 == 0) { acc = acc + loud.greet(i); }
			acc = acc + helper(acc);                 // hot static call
			acc = acc & 0xFFFF;
		}
		return acc;
	}
`

func main() {
	// 1. Compile MJ source to verified bytecode.
	prog, err := mj.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Create a VM and attach the paper's counter-based sampler:
	//    every timer tick opens a window in which every 3rd call event
	//    is sampled, 16 samples per tick (the Table 3 configuration).
	cbs := profiler.NewCBS(profiler.Config{Stride: 3, SamplesPerTick: 16, Seed: 1})
	m := vm.New(prog)
	m.SetProfiler(cbs)
	m.SetTimer(200_000) // virtual timer period in modeled cycles

	// 3. Run and inspect.
	result, err := m.Run(2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result = %d after %d calls in %d modeled cycles\n", result.I, m.Calls, m.Cycles)
	fmt.Printf("profiling overhead: %.3f%%\n\n", m.Overhead()*100)

	// 4. The sampled dynamic call graph. Edge weights are sample
	//    counts; Percent() normalizes them.
	names := func(id int) string { return prog.Methods[id].Name }
	fmt.Print(cbs.Graph.Dump(names, prog.SiteDescription))

	// 5. Compare against ground truth from an exhaustive profile.
	perfect := profiler.NewExhaustive()
	m2 := vm.New(prog)
	m2.SetProfiler(perfect)
	if _, err := m2.Run(2_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naccuracy vs exhaustive profile: %.1f / 100\n",
		profile.Accuracy(cbs.Graph, perfect.Graph))
}
