// Adversary: the paper's Figure 1 program. A loop executes a long
// sequence of non-call instructions and then two short calls. A
// timer-driven sampler almost always interrupts inside the non-call
// stretch and then credits whichever call site it reaches first, so
// call_1 looks hot and call_2 looks cold even though they execute
// equally often. CBS spreads its samples across the window and sees
// the truth.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"strings"

	"gocbs/internal/mj"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

func adversarySource() string {
	var stretch strings.Builder
	for i := 0; i < 150; i++ {
		stretch.WriteString("g = g + i; g = g ^ 3;\n")
	}
	return `
		int g = 0;
		int call_1() { g = g + 1; return g; }
		int call_2() { g = g + 2; return g; }
		int M(int n) {
			for (int i = 0; i < n; i = i + 1) {
				// Long sequence of non-call instructions
				` + stretch.String() + `
				call_1(); // Two short calls
				call_2();
			}
			return g;
		}
		int main(int n) { return M(n); }
	`
}

func main() {
	src := adversarySource()

	measure := func(label string, cfg profiler.Config) {
		prog, err := mj.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		c := profiler.NewCBS(cfg)
		m := vm.New(prog)
		m.SetProfiler(c)
		m.SetTimer(1_000_000)
		if _, err := m.Run(30_000); err != nil {
			log.Fatal(err)
		}
		c1 := prog.MethodByName("$Globals.call_1")
		c2 := prog.MethodByName("$Globals.call_2")
		var w1, w2 float64
		for _, e := range c.Graph.Edges() {
			if e.Callee == c1.ID {
				w1 += c.Graph.Weight(e)
			}
			if e.Callee == c2.ID {
				w2 += c.Graph.Weight(e)
			}
		}
		fmt.Printf("%-22s samples=%4d   call_1=%5.0f   call_2=%5.0f", label, int(c.Graph.Total()), w1, w2)
		if w2 == 0 {
			fmt.Printf("   -> call_2 is INVISIBLE\n")
		} else {
			fmt.Printf("   (ratio %.2f)\n", w1/w2)
		}
	}

	fmt.Println("Figure 1 adversary: both calls execute exactly 30000 times.")
	fmt.Println()
	measure("timer-only (1,1):", profiler.TimerOnly(profiler.FlavourRVM))
	measure("cbs stride=2 n=8:", profiler.Config{Stride: 2, SamplesPerTick: 8, Seed: 7})
	measure("cbs stride=5 n=16:", profiler.Config{Stride: 5, SamplesPerTick: 16, Seed: 7})
}
