// Offline profile-guided optimization: the full persistence pipeline.
// A "training" process profiles a benchmark with CBS and saves the DCG
// to disk; a separate "build" step reloads the profile, feeds it to
// the inliner, and writes an optimized MJBC binary; a final "deploy"
// step loads that binary and measures it. This mirrors how a
// profile repository decouples profiling from optimizing compilation.
//
//	go run ./examples/offline-pgo [benchmark]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"gocbs/internal/adaptive"
	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/inline"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

func main() {
	name := "jess"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b := bench.ByName(name)
	if b == nil {
		log.Fatalf("unknown benchmark %q", name)
	}

	// --- Training run: profile with CBS and persist the DCG. ---
	prog, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	cbs := profiler.NewCBS(profiler.Config{Stride: 3, SamplesPerTick: 16, Seed: 1})
	m := vm.New(prog)
	m.SetProfiler(cbs)
	m.SetTimer(3_000_000)
	if _, err := m.Run(b.Small); err != nil {
		log.Fatal(err)
	}
	var profileBlob bytes.Buffer
	if _, err := cbs.Graph.WriteTo(&profileBlob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training:  %d samples -> %d DCG edges, %d-byte profile\n",
		int(cbs.Graph.Total()), cbs.Graph.NumEdges(), profileBlob.Len())

	// --- Build step: fresh compile + reloaded profile -> optimized binary. ---
	loaded, err := profile.ReadDCG(&profileBlob)
	if err != nil {
		log.Fatal(err)
	}
	buildProg, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	st, err := adaptive.RecompileWithCleanup(buildProg, vm.DefaultCostModel(),
		inline.NewNewLinear(), loaded, inline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var binary bytes.Buffer
	if err := bytecode.EncodeProgram(buildProg, &binary); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("build:     %d inlines (%d guarded), %d-byte MJBC binary\n",
		st.InlinesApplied, st.GuardedInlines, binary.Len())

	// --- Deploy: load the binary and measure against the unoptimized build. ---
	deployed, err := bytecode.DecodeProgram(&binary)
	if err != nil {
		log.Fatal(err)
	}
	measure := func(p *bytecode.Program) uint64 {
		mm := vm.New(p)
		setup := p.MethodByName("$Globals.setup")
		iter := p.MethodByName("$Globals.iter")
		if _, err := mm.Call(setup, vm.IntV(b.Small)); err != nil {
			log.Fatal(err)
		}
		start := mm.Cycles
		for i := 0; i < b.SteadyIters; i++ {
			if _, err := mm.Call(iter); err != nil {
				log.Fatal(err)
			}
		}
		return (mm.Cycles - start) / uint64(b.SteadyIters)
	}
	plain, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	base := measure(plain)
	opt := measure(deployed)
	fmt.Printf("deploy:    %d -> %d cycles/iteration (%+.2f%%)\n",
		base, opt, (float64(base)/float64(opt)-1)*100)
}
