// Context: the paper's §8 extension — because CBS samples by walking
// the call stack, capturing the *whole* stack instead of the top two
// frames turns the same mechanism into a context-sensitive profiler
// that builds a calling-context tree (CCT).
//
//	go run ./examples/context
package main

import (
	"fmt"
	"log"

	"gocbs/internal/mj"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

// The same helper is hot from two different contexts; a flat DCG merges
// them, the CCT keeps them apart.
const src = `
	int shared(int x) { return x * x + 1; }
	int fromA(int x) { return shared(x) + 1; }
	int fromB(int x) { return shared(x) + 2; }
	int main(int n) {
		int acc = 0;
		for (int i = 0; i < n; i = i + 1) {
			acc = acc + fromA(i);
			if (i % 3 == 0) { acc = acc + fromB(i); }
			acc = acc & 0xFFFF;
		}
		return acc;
	}
`

func main() {
	prog, err := mj.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	cbs := profiler.NewCBS(profiler.Config{
		Stride: 3, SamplesPerTick: 16, Seed: 9,
		FullStack: true, // capture whole stacks -> calling-context tree
	})
	m := vm.New(prog)
	m.SetProfiler(cbs)
	m.SetTimer(150_000)
	if _, err := m.Run(2_000_000); err != nil {
		log.Fatal(err)
	}

	name := func(id int) string {
		if id < 0 {
			return "<root>"
		}
		return prog.Methods[id].Name
	}

	fmt.Println("Flat DCG (contexts merged):")
	fmt.Print(cbs.Graph.Dump(name, nil))

	fmt.Println("\nCalling-context tree (contexts separated):")
	var walk func(n *profile.CCTNode, indent string)
	walk = func(n *profile.CCTNode, indent string) {
		for _, c := range n.Children() {
			fmt.Printf("%s%s  (%.0f samples)\n", indent, name(c.Method), c.Weight)
			walk(c, indent+"    ")
		}
	}
	walk(cbs.Tree.Root, "  ")
	fmt.Printf("\nCCT: %d context nodes from %d samples\n", cbs.Tree.NumNodes(), int(cbs.Tree.Total()))
	fmt.Println("Note shared() appears once per calling context, not once overall.")
}
