// Inlining: the full feedback-directed optimization pipeline on one
// suite benchmark — profile online with CBS, recompile every method
// with the paper's new linear-threshold inliner, and measure the
// steady-state speedup, comparing against a timer-only profile and a
// no-profile baseline.
//
//	go run ./examples/inlining [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"gocbs/internal/adaptive"
	"gocbs/internal/bench"
	"gocbs/internal/inline"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

const timerPeriod = 3_000_000

func main() {
	name := "mtrt"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b := bench.ByName(name)
	if b == nil {
		log.Fatalf("unknown benchmark %q", name)
	}
	fmt.Printf("benchmark %s (small input, %d warmup + %d measured iterations)\n\n",
		b.Name, b.SteadyIters, b.SteadyIters)

	base := steadyCycles(b, nil, nil)
	fmt.Printf("%-28s %12d cycles/iteration\n", "baseline (static inlining):", base)

	for _, cfg := range []struct {
		label string
		pc    profiler.Config
	}{
		{"timer-only profile:", profiler.TimerOnly(profiler.FlavourRVM)},
		{"cbs (stride 3, samples 16):", profiler.Config{Stride: 3, SamplesPerTick: 16, Seed: 42}},
	} {
		g := collectProfile(b, cfg.pc)
		per := steadyCycles(b, inline.NewNewLinear(), g)
		fmt.Printf("%-28s %12d cycles/iteration  (%+.2f%% vs baseline, %d DCG edges)\n",
			cfg.label, per, (float64(base)/float64(per)-1)*100, g.NumEdges())
	}
}

// collectProfile runs warmup iterations under a CBS configuration.
func collectProfile(b *bench.Benchmark, pc profiler.Config) *profile.DCG {
	prog, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inline.Optimize(prog, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
	c := profiler.NewCBS(pc)
	m := vm.New(prog)
	m.SetProfiler(c)
	m.SetTimer(timerPeriod)
	setup := prog.MethodByName("$Globals.setup")
	iter := prog.MethodByName("$Globals.iter")
	if _, err := m.Call(setup, vm.IntV(b.Small)); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < b.SteadyIters; i++ {
		if _, err := m.Call(iter); err != nil {
			log.Fatal(err)
		}
	}
	return c.Graph
}

// steadyCycles recompiles with the policy (nil profile = static-only
// decisions) and measures steady-state cycles per iteration.
func steadyCycles(b *bench.Benchmark, policy inline.Policy, g *profile.DCG) uint64 {
	prog, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inline.Optimize(prog, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
	if policy == nil {
		policy = inline.NewNewLinear()
	}
	if _, err := adaptive.Recompile(prog, vm.DefaultCostModel(), policy, g, inline.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
	m := vm.New(prog)
	setup := prog.MethodByName("$Globals.setup")
	iter := prog.MethodByName("$Globals.iter")
	if _, err := m.Call(setup, vm.IntV(b.Small)); err != nil {
		log.Fatal(err)
	}
	start := m.Cycles
	for i := 0; i < b.SteadyIters; i++ {
		if _, err := m.Call(iter); err != nil {
			log.Fatal(err)
		}
	}
	return (m.Cycles - start) / uint64(b.SteadyIters)
}
