// Accuracy sweep: how the two CBS parameters trade overhead against
// profile accuracy on a single benchmark — a one-benchmark slice of the
// paper's Table 2.
//
//	go run ./examples/accuracy-sweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"gocbs/internal/bench"
	"gocbs/internal/experiment"
	"gocbs/internal/profiler"
)

func main() {
	name := "javac"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b := bench.ByName(name)
	if b == nil {
		log.Fatalf("unknown benchmark %q", name)
	}
	cfg := experiment.QuickConfig()
	perfect, err := experiment.PerfectDCG(cfg, b, b.Small)
	if err != nil {
		log.Fatal(err)
	}

	strides := []int{1, 3, 7, 15, 31}
	samples := []int{1, 4, 16, 64, 256}

	fmt.Printf("benchmark %s-small: overhead%% / accuracy (perfect DCG: %d edges)\n\n",
		b.Name, perfect.NumEdges())
	fmt.Printf("%8s |", "samp\\str")
	for _, s := range strides {
		fmt.Printf(" %11d |", s)
	}
	fmt.Println()
	for _, n := range samples {
		fmt.Printf("%8d |", n)
		for _, s := range strides {
			res, err := experiment.MeasureCBS(cfg, b, b.Small, profiler.Config{
				Stride: s, SamplesPerTick: n,
			}, perfect)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %5.2f /%4.0f |", res.OverheadPct, res.Accuracy)
		}
		fmt.Println()
	}
	fmt.Println("\nGrid point (1,1) is the timer-only baseline; accuracy grows along")
	fmt.Println("both axes while overhead stays negligible in the upper-left region.")
}
