// Command cbsload is the fleet-scale chaos load generator: it runs N
// in-process CBS-profiled pusher VMs and plan pullers against a real
// in-process cbsd daemon through a seeded fault-injecting transport
// (latency, dropped responses, connection resets, synthetic 5xx) with
// scheduled daemon kill/restart cycles, then verifies the end-to-end
// invariants — exactly-once ingest, monotone plan epochs, byte-identical
// restart recovery, no puller divergence — and emits a machine-readable
// report.
//
// The fault schedule is a pure function of -seed: two runs with the same
// seed produce byte-identical deterministic report sections, so any
// failure is reproducible from the seed printed at startup.
//
// Usage:
//
//	cbsload -vms 64 -seed 1 -faults all
//	cbsload -vms 16 -rounds 8 -restarts 2 -report soak.json
//	cbsload -vms 16 -leaves 4 -restarts 2   # federated: 4 leaves + 1 root
//	cbsload -vms 12 -profilers cbs,mincover # A/B mixed profile sources
//
// With -leaves N the soak runs against a federated aggregation tree:
// the pusher fleet is rendezvous-sharded across N leaf daemons that
// forward merged deltas into one root, restarts kill leaves instead of
// the (only) daemon, and the conservation invariant is checked
// fleet-wide against the root's aggregate.
//
// Exit status is 0 only when every invariant checker passed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gocbs/internal/fleetsim"
)

// splitCSV parses a comma-separated list, dropping empty elements so
// "" means nil (keep the all-CBS default fleet).
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	var (
		vms      = flag.Int("vms", 16, "number of pusher VMs")
		pullers  = flag.Int("pullers", 0, "number of plan-pulling VMs (0 = default 2)")
		leaves   = flag.Int("leaves", 0, "federated tree width: leaf daemons under one root (0 = single daemon)")
		rounds   = flag.Int("rounds", 6, "lockstep pusher rounds")
		iters    = flag.Int("iters", 2, "benchmark iterations per pusher per round")
		seed     = flag.Int64("seed", 1, "fleet seed (0 = pick one; the seed is always printed)")
		faultstr = flag.String("faults", "all", "faults to inject: all, none, or csv of latency,drop-response,reset,5xx")
		restarts = flag.Int("restarts", 1, "scheduled daemon kill/restart cycles")
		program  = flag.String("program", "compress", "benchmark program the fleet runs")
		profs    = flag.String("profilers", "", "csv of profile sources assigned round-robin across pushers: cbs, exhaustive, mincover (empty = all cbs)")
		stateDir = flag.String("state", "", "daemon state dir (default: fresh temp dir, removed on exit)")
		maxWait  = flag.Duration("max-latency", 0, "upper bound for injected latency faults (0 = default)")
		report   = flag.String("report", "", "write the JSON report to this file")
		verbose  = flag.Bool("v", false, "log fleet lifecycle events")
	)
	flag.Parse()

	faults, err := fleetsim.ParseFaults(*faultstr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbsload:", err)
		os.Exit(2)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cbsload: "+format+"\n", args...)
		}
	}

	// Print the seed before running: a hung or crashed soak must still
	// be reproducible.
	topology := "single daemon"
	if *leaves > 0 {
		topology = fmt.Sprintf("%d leaves + 1 root", *leaves)
	}
	fmt.Printf("cbsload: %d vms, %s, %d rounds, faults %s, %d restarts, seed %d\n",
		*vms, topology, *rounds, faults, *restarts, *seed)

	rep, err := fleetsim.Run(fleetsim.Config{
		VMs:           *vms,
		Pullers:       *pullers,
		Leaves:        *leaves,
		Rounds:        *rounds,
		ItersPerRound: *iters,
		Seed:          *seed,
		Faults:        faults,
		Restarts:      *restarts,
		Program:       *program,
		Profilers:     splitCSV(*profs),
		StateDir:      *stateDir,
		MaxLatency:    *maxWait,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbsload:", err)
		os.Exit(1)
	}

	fmt.Println(rep.Format())
	if *report != "" {
		if err := os.WriteFile(*report, rep.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cbsload: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *report)
	}
	if !rep.AllPassed() {
		fmt.Fprintf(os.Stderr, "cbsload: INVARIANT FAILURE — reproduce with -seed %d\n", *seed)
		os.Exit(1)
	}
}
