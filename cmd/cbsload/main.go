// Command cbsload is the fleet-scale chaos load generator: it runs N
// in-process CBS-profiled pusher VMs and plan pullers against a real
// in-process cbsd daemon through a seeded fault-injecting transport
// (latency, dropped responses, connection resets, synthetic 5xx) with
// scheduled daemon kill/restart cycles, then verifies the end-to-end
// invariants — exactly-once ingest, monotone plan epochs, byte-identical
// restart recovery, no puller divergence — and emits a machine-readable
// report.
//
// The fault schedule is a pure function of -seed: two runs with the same
// seed produce byte-identical deterministic report sections, so any
// failure is reproducible from the seed printed at startup.
//
// Usage:
//
//	cbsload -vms 64 -seed 1 -faults all
//	cbsload -vms 16 -rounds 8 -restarts 2 -report soak.json
//	cbsload -vms 16 -leaves 4 -restarts 2   # federated: 4 leaves + 1 root
//	cbsload -vms 12 -profilers cbs,mincover # A/B mixed profile sources
//	cbsload -vms 8 -gen-seed 17 -gen-shape closureheavy  # generated workload
//
// With -leaves N the soak runs against a federated aggregation tree:
// the pusher fleet is rendezvous-sharded across N leaf daemons that
// forward merged deltas into one root, restarts kill leaves instead of
// the (only) daemon, and the conservation invariant is checked
// fleet-wide against the root's aggregate.
//
// Exit status is 0 only when every invariant checker passed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gocbs/internal/fleetsim"
)

// splitCSV parses a comma-separated list, dropping empty elements so
// "" means nil (keep the all-CBS default fleet).
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	var (
		vms      = flag.Int("vms", 16, "number of pusher VMs")
		pullers  = flag.Int("pullers", 0, "number of plan-pulling VMs (0 = default 2)")
		leaves   = flag.Int("leaves", 0, "federated tree width: leaf daemons under one root (0 = single daemon)")
		rounds   = flag.Int("rounds", 6, "lockstep pusher rounds")
		iters    = flag.Int("iters", 2, "benchmark iterations per pusher per round")
		seed     = flag.Int64("seed", 1, "fleet seed (0 = pick one; the seed is always printed)")
		faultstr = flag.String("faults", "all", "faults to inject: all, none, or csv of latency,drop-response,reset,5xx")
		restarts = flag.Int("restarts", 1, "scheduled daemon kill/restart cycles")
		program  = flag.String("program", "compress", "benchmark program the fleet runs")
		genSeed  = flag.Int64("gen-seed", -1, "run a generated workload with this generator seed instead of a benchmark (-1 = off)")
		genSize  = flag.Int("gen-size", 3, "with -gen-seed: generator size knob")
		genShape = flag.String("gen-shape", "", "with -gen-seed: generator shape (megamorphic, phaseshift, deepvirt, closureheavy; empty = default mix)")
		profs    = flag.String("profilers", "", "csv of profile sources assigned round-robin across pushers: cbs, exhaustive, mincover (empty = all cbs)")
		stateDir = flag.String("state", "", "daemon state dir (default: fresh temp dir, removed on exit)")
		maxWait  = flag.Duration("max-latency", 0, "upper bound for injected latency faults (0 = default)")
		report   = flag.String("report", "", "write the JSON report to this file")
		verbose  = flag.Bool("v", false, "log fleet lifecycle events")
	)
	flag.Parse()

	faults, err := fleetsim.ParseFaults(*faultstr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbsload:", err)
		os.Exit(2)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cbsload: "+format+"\n", args...)
		}
	}

	// Print the seed before running: a hung or crashed soak must still
	// be reproducible.
	topology := "single daemon"
	if *leaves > 0 {
		topology = fmt.Sprintf("%d leaves + 1 root", *leaves)
	}
	workload := *program
	if *genSeed >= 0 {
		shape := *genShape
		if shape == "" {
			shape = "default"
		}
		workload = fmt.Sprintf("generated %s (gen-seed %d, gen-size %d)", shape, *genSeed, *genSize)
		// Let fleetsim derive the synthetic program name from the
		// generator coordinates instead of the benchmark default.
		*program = ""
	}
	fmt.Printf("cbsload: %d vms, %s, %d rounds of %s, faults %s, %d restarts, seed %d\n",
		*vms, topology, *rounds, workload, faults, *restarts, *seed)

	rep, err := fleetsim.Run(fleetsim.Config{
		VMs:                *vms,
		Pullers:            *pullers,
		Leaves:             *leaves,
		Rounds:             *rounds,
		ItersPerRound:      *iters,
		Seed:               *seed,
		Faults:             faults,
		Restarts:           *restarts,
		Program:            *program,
		Profilers:          splitCSV(*profs),
		GeneratedWorkloads: *genSeed >= 0,
		GenSeed:            *genSeed,
		GenSize:            *genSize,
		GenShape:           *genShape,
		StateDir:           *stateDir,
		MaxLatency:         *maxWait,
		Logf:               logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbsload:", err)
		os.Exit(1)
	}

	fmt.Println(rep.Format())
	if *report != "" {
		if err := os.WriteFile(*report, rep.JSON(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cbsload: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *report)
	}
	if !rep.AllPassed() {
		fmt.Fprintf(os.Stderr, "cbsload: INVARIANT FAILURE — reproduce with -seed %d\n", *seed)
		os.Exit(1)
	}
}
