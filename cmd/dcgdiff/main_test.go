package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gocbs/internal/profile"
)

func sampleDCG() *profile.DCG {
	g := profile.NewDCG()
	g.AddSample(profile.Edge{Caller: 1, Site: 2, Callee: 3}, 40)
	g.AddSample(profile.Edge{Caller: 4, Site: 5, Callee: 6}, 2.5)
	g.AddSample(profile.Edge{Caller: 7, Site: 8, Callee: 9}, 0.125)
	return g
}

// TestLoadProfileBothFormats: loadProfile round-trips the DCGB-v1
// binary wire format and still reads the legacy text format, and both
// decode to the identical graph.
func TestLoadProfileBothFormats(t *testing.T) {
	dir := t.TempDir()
	g := sampleDCG()

	binPath := filepath.Join(dir, "p.dcgb")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}

	txtPath := filepath.Join(dir, "p.dcg")
	tf, err := os.Create(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteText(tf); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}

	// The binary file must start with the DCGB magic (the format this
	// tool documents), the text file with the legacy header.
	if head, _ := os.ReadFile(binPath); string(head[:4]) != "DCGB" {
		t.Fatalf("binary profile starts %q, want DCGB magic", head[:4])
	}
	if head, _ := os.ReadFile(txtPath); !strings.HasPrefix(string(head), "dcg v1") {
		t.Fatalf("text profile does not start with the legacy header")
	}

	fromBin, err := loadProfile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := loadProfile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []*profile.DCG{fromBin, fromTxt} {
		if got.NumEdges() != g.NumEdges() || got.Total() != g.Total() {
			t.Fatalf("loaded graph %d edges/%v weight, want %d/%v",
				got.NumEdges(), got.Total(), g.NumEdges(), g.Total())
		}
		for _, e := range g.Edges() {
			if math.Float64bits(got.Weight(e)) != math.Float64bits(g.Weight(e)) {
				t.Errorf("edge %v weight %v, want bit-exact %v", e, got.Weight(e), g.Weight(e))
			}
		}
	}
	// The binary round trip is bit-exact by construction; overlap of
	// the two decodings must be a perfect 100.
	if ov := profile.Overlap(fromBin, fromTxt); ov < 99.999 {
		t.Errorf("binary/text decodings overlap %v, want 100", ov)
	}
}

func TestLoadProfileErrors(t *testing.T) {
	if _, err := loadProfile(filepath.Join(t.TempDir(), "missing.dcg")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.dcg")
	if err := os.WriteFile(bad, []byte("PLNB not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadProfile(bad); err == nil || !strings.Contains(err.Error(), "bad.dcg") {
		t.Errorf("garbage profile: err = %v, want an error naming the file", err)
	}
}
