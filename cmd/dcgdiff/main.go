// Command dcgdiff compares two saved dynamic call graph profiles (as
// written by `cbsvm -save`): it reports the overlap metric between
// them and the edges responsible for the largest disagreement —
// useful for debugging profiler configurations against each other or
// against an exhaustive profile.
//
// Both serialized DCG formats are accepted, in any combination: the
// DCGB-v1 binary wire format (what cbsvm -save, cbsd /snapshot, and
// checkpoints write today) and the legacy "dcg v1" text format, which
// profile.ReadDCG detects by magic bytes.
//
//	cbsvm -bench jess -profiler timer -save timer.dcg
//	cbsvm -bench jess -save cbs.dcg
//	dcgdiff timer.dcg cbs.dcg
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gocbs/internal/profile"
)

func main() {
	top := flag.Int("top", 15, "number of most-divergent edges to print")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dcgdiff a.dcg b.dcg")
		os.Exit(2)
	}
	a, err := loadProfile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgdiff:", err)
		os.Exit(1)
	}
	b, err := loadProfile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgdiff:", err)
		os.Exit(1)
	}

	fmt.Printf("%-24s %8d edges, total weight %.0f\n", flag.Arg(0), a.NumEdges(), a.Total())
	fmt.Printf("%-24s %8d edges, total weight %.0f\n", flag.Arg(1), b.NumEdges(), b.Total())
	fmt.Printf("overlap: %.2f / 100\n\n", profile.Overlap(a, b))

	type diff struct {
		e      profile.Edge
		pa, pb float64
	}
	seen := map[profile.Edge]bool{}
	var diffs []diff
	for _, e := range a.Edges() {
		seen[e] = true
		diffs = append(diffs, diff{e, a.Percent(e), b.Percent(e)})
	}
	for _, e := range b.Edges() {
		if !seen[e] {
			diffs = append(diffs, diff{e, 0, b.Percent(e)})
		}
	}
	sort.Slice(diffs, func(i, j int) bool {
		di := abs(diffs[i].pa - diffs[i].pb)
		dj := abs(diffs[j].pa - diffs[j].pb)
		if di != dj {
			return di > dj
		}
		return diffs[i].e.Site < diffs[j].e.Site
	})
	fmt.Printf("%-30s %10s %10s %10s\n", "edge", "A %", "B %", "|Δ|")
	for i, d := range diffs {
		if i >= *top {
			fmt.Printf("  ... %d more\n", len(diffs)-i)
			break
		}
		fmt.Printf("%-30s %10.3f %10.3f %10.3f\n", d.e.String(), d.pa, d.pb, abs(d.pa-d.pb))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// loadProfile reads a serialized DCG in either supported format
// (DCGB-v1 binary or legacy text; ReadDCG sniffs the magic).
func loadProfile(path string) (*profile.DCG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := profile.ReadDCG(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
