// Command mjc compiles MJ source files to MJ VM bytecode and either
// prints the disassembly, runs the program, saves it in the MJBC
// binary format, or loads and runs a previously saved binary.
//
//	mjc prog.mj              disassemble
//	mjc -run prog.mj 42 7    run main(42, 7) and print the result
//	mjc -run -trace prog.mj  also dump the executed-method table
//	mjc -o prog.mjb prog.mj  compile and save binary
//	mjc -run prog.mjb 42     run a saved binary (by .mjb extension)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gocbs/internal/bytecode"
	"gocbs/internal/mj"
	"gocbs/internal/vm"
)

func main() {
	run := flag.Bool("run", false, "execute main after compiling")
	trace := flag.Bool("trace", false, "with -run: print per-run statistics")
	entry := flag.String("entry", "main", "entry-point function name")
	out := flag.String("o", "", "write the compiled program to this .mjb file")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mjc [-run] [-trace] [-entry name] file.mj [args...]")
		os.Exit(2)
	}
	path := flag.Arg(0)
	var prog *bytecode.Program
	if strings.HasSuffix(path, ".mjb") {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		prog, err = bytecode.DecodeProgram(f)
		closeErr := f.Close()
		if err != nil {
			fatal(err)
		}
		if closeErr != nil {
			fatal(closeErr)
		}
	} else {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		prog, err = mj.CompileEntry(string(src), *entry)
		if err != nil {
			fatal(err)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := bytecode.EncodeProgram(prog, f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if !*run {
		fmt.Print(bytecode.DisasmProgram(prog))
		return
	}

	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("argument %q: %w", a, err))
		}
		args = append(args, v)
	}
	m := vm.New(prog)
	result, err := m.Run(args...)
	if err != nil {
		fatal(err)
	}
	for _, v := range m.Output {
		fmt.Println(v)
	}
	fmt.Printf("result: %d\n", result.I)
	if *trace {
		fmt.Printf("instructions: %d\n", m.Instrs)
		fmt.Printf("cycles:       %d\n", m.Cycles)
		fmt.Printf("calls:        %d\n", m.Calls)
		fmt.Printf("methods run:  %d of %d\n", m.MethodsExecuted(), len(prog.Methods))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjc:", err)
	os.Exit(1)
}
