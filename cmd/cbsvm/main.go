// Command cbsvm runs an MJ program (a file or a named suite benchmark)
// under a chosen call-graph profiler and reports the collected dynamic
// call graph, its accuracy against an exhaustive profile, and the
// profiling overhead.
//
//	cbsvm -bench javac -size small
//	cbsvm -bench mtrt -stride 7 -samples 32 -flavour j9
//	cbsvm -file prog.mj -arg 500 -profiler timer
//	cbsvm -bench jess -profiler whaley -top 10
//	cbsvm -bench compress -profiler mincover
//	cbsvm -bench compress -push http://localhost:8944 -push-every 50
//
// With -push, the collected DCG is streamed to a cbsd aggregation
// daemon as non-overlapping delta snapshots: one every -push-every
// timer ticks plus a final flush, so the daemon's merge of all
// increments equals this run's final graph exactly. Each increment is
// stamped with a (pusher, sequence) pair, making delivery idempotent:
// transient failures are retried with backoff (-push-retries,
// -push-backoff), undelivered increments stay queued for the next
// tick, and a retry whose first attempt actually landed is
// deduplicated by the daemon instead of double-counted.
package main

import (
	"flag"
	"fmt"
	"os"

	"gocbs/internal/api"
	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/dcgstore"
	"gocbs/internal/experiment"
	"gocbs/internal/inline"
	"gocbs/internal/mincover"
	"gocbs/internal/mj"
	"gocbs/internal/profile"
	"gocbs/internal/profiler"
	"gocbs/internal/puller"
	"gocbs/internal/vm"
)

func main() {
	benchName := flag.String("bench", "", "suite benchmark to run (see -list)")
	list := flag.Bool("list", false, "list suite benchmarks and exit")
	file := flag.String("file", "", "MJ source file to run instead of a suite benchmark")
	arg := flag.Int64("arg", 0, "integer argument passed to main (with -file)")
	size := flag.String("size", "small", "input size for -bench: small or large")
	prof := flag.String("profiler", "cbs", "profiler: cbs, timer, whaley, patching, exhaustive, mincover")
	stride := flag.Int("stride", 3, "CBS stride")
	samples := flag.Int("samples", 16, "CBS samples per timer tick")
	flavour := flag.String("flavour", "rvm", "VM flavour: rvm or j9")
	seed := flag.Int64("seed", 42, "profiler RNG seed")
	timer := flag.Uint64("timer", experiment.DefaultTimerPeriod, "virtual timer period in cycles")
	top := flag.Int("top", 20, "number of DCG edges to print")
	saveProfile := flag.String("save", "", "write the collected DCG to this file")
	pushURL := flag.String("push", "", "stream the DCG to a cbsd daemon at this base URL")
	pushEvery := flag.Int("push-every", 50, "with -push: push a delta snapshot every N timer ticks (0 = final push only)")
	pushRetries := flag.Int("push-retries", dcgstore.DefaultRetries, "with -push: retries per push on transient failures (-1 disables)")
	pushBackoff := flag.Duration("push-backoff", dcgstore.DefaultBackoff, "with -push: initial retry backoff (doubles per retry, jittered)")
	pushGiveUp := flag.Int("push-give-up", dcgstore.DefaultGiveUpAfter, "with -push: stop periodic pushing after N consecutive failed ticks (0 = never)")
	pullURL := flag.String("pull-plan", "", "run in plan-pulling mode against a cbsd daemon at this base URL (requires -bench)")
	pullRounds := flag.Int("pull-rounds", 6, "with -pull-plan: total top-level benchmark rounds to run")
	pullEvery := flag.Int("pull-every", 2, "with -pull-plan: poll the daemon every N rounds")
	pullIters := flag.Int("pull-iters", 2, "with -pull-plan: benchmark iterations per round")
	pullVerify := flag.Bool("pull-verify", true, "with -pull-plan: replay a candidate plan's output against the unoptimized program before swapping it in")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-12s %s\n", b.Name, b.Description)
		}
		return
	}

	var prog *bytecode.Program
	var runArg int64
	var err error
	switch {
	case *benchName != "":
		b := bench.ByName(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q (use -list)", *benchName))
		}
		prog, err = b.Compile()
		if err != nil {
			fatal(err)
		}
		runArg = b.SizeFor(*size)
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		prog, err = mj.Compile(string(src))
		if err != nil {
			fatal(err)
		}
		runArg = *arg
	default:
		fatal(fmt.Errorf("pass -bench NAME or -file FILE (or -list)"))
	}

	// JIT-only configuration, as in the paper's accuracy experiments.
	if _, err := inline.Optimize(prog, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
		fatal(err)
	}

	// Plan-pulling mode: no local profiling run; the VM executes the
	// benchmark in rounds and applies whatever inlining plan the
	// daemon compiled from the fleet's aggregated profile.
	if *pullURL != "" {
		if *benchName == "" {
			fatal(fmt.Errorf("-pull-plan requires -bench (plans are keyed by benchmark name)"))
		}
		if *pushURL != "" {
			fatal(fmt.Errorf("-pull-plan and -push are mutually exclusive; run pushers and pullers as separate VMs"))
		}
		st, err := puller.Run(prog, puller.Options{
			URL: *pullURL, Program: *benchName, Size: runArg,
			Rounds: *pullRounds, Every: *pullEvery, Iters: *pullIters,
			Verify: *pullVerify, Opts: inline.DefaultOptions(),
			Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pull mode:   %s from %s\n", *benchName, *pullURL)
		fmt.Printf("rounds:      %d (%d iters each), polls %d, plan swaps %d\n",
			st.Rounds, *pullIters, st.Polls, st.Swaps)
		fmt.Printf("plan epoch:  %d (kill switch fired: %v)\n", st.Epoch, st.Killed)
		fmt.Printf("cycles/round: %d unoptimized -> %d final (%.1f%% faster)\n",
			st.BaseCycles, st.LastCycles, (float64(st.BaseCycles)/float64(st.LastCycles)-1)*100)
		return
	}

	fl := profiler.FlavourRVM
	if *flavour == "j9" {
		fl = profiler.FlavourJ9
	}

	// The perfect profile for accuracy scoring.
	perfect := profiler.NewExhaustive()
	{
		m := vm.New(prog)
		m.SetProfiler(perfect)
		if _, err := m.Run(runArg); err != nil {
			fatal(err)
		}
	}

	m := vm.New(prog)
	if fl == profiler.FlavourJ9 {
		m.EpilogueYieldpoints = false
	}
	var graph *profile.DCG
	var mainProf vm.Profiler
	var mc *mincover.Profiler
	name := *prof
	switch *prof {
	case "cbs", "timer":
		cfg := profiler.Config{Stride: *stride, SamplesPerTick: *samples, Flavour: fl, Seed: *seed}
		if *prof == "timer" {
			cfg = profiler.TimerOnly(fl)
			cfg.Seed = *seed
		}
		c := profiler.NewCBS(cfg)
		mainProf = c
		m.SetTimer(*timer)
		graph = c.Graph
		name = c.Name()
	case "whaley":
		w := profiler.NewWhaley()
		mainProf = w
		m.SetTimer(*timer)
		graph = w.Graph
	case "patching":
		p := profiler.NewPatching(len(prog.Methods), 100, 64)
		mainProf = p
		graph = p.Graph
	case "exhaustive":
		e := profiler.NewInstrumented()
		mainProf = e
		graph = e.Graph
	case "mincover":
		mc = mincover.New(prog)
		mainProf = mc
		graph = mc.Graph
	default:
		fatal(fmt.Errorf("unknown profiler %q", *prof))
	}

	var push *dcgstore.TickPusher
	if *pushURL != "" {
		client := dcgstore.NewClient(*pushURL)
		client.Retries = *pushRetries
		client.Backoff = *pushBackoff
		if *benchName != "" {
			// Suite benchmarks have a fleet-wide canonical identity:
			// stamp every push with (name, content version) so the daemon
			// aggregates this build into its own ledger, and register the
			// method/site manifest so carry-forward has fingerprints to
			// match against. Ad-hoc -file programs stay unstamped (legacy
			// default ledger). Manifest registration is best-effort: an
			// old daemon 404s, and the keyed pushes still merge.
			client.Key = api.ProgramKey{Program: *benchName, Version: prog.Version()}
			if _, err := client.RegisterManifest(prog.BuildManifest(*benchName)); err != nil {
				fmt.Fprintf(os.Stderr, "manifest registration skipped: %v\n", err)
			}
		}
		push = dcgstore.NewTickPusher(client, graph, *pushEvery)
		push.GiveUpAfter = *pushGiveUp
		m.SetProfiler(profiler.Combine(mainProf, push))
	} else {
		m.SetProfiler(mainProf)
	}

	if _, err := m.Run(runArg); err != nil {
		fatal(err)
	}

	// Mincover recovers the unprobed remainder of the DCG before the
	// final flush, so the pushed increments sum to the complete graph.
	if mc != nil {
		if err := mc.Finalize(); err != nil {
			fatal(err)
		}
		c := mc.Cover
		fmt.Printf("mincover:  %d of %d call points probed (ratio %.2f), %d static edges\n",
			c.NumProbes(), c.NumPoints(), c.ProbeRatio(), len(c.Graph.Edges))
	}

	if push != nil {
		if err := push.Flush(); err != nil {
			fatal(fmt.Errorf("push to %s (%d increments undelivered): %w", *pushURL, push.Pending(), err))
		}
		fmt.Fprintf(os.Stderr, "pushed %d snapshot(s) to %s\n", push.Pushes(), *pushURL)
	}

	fmt.Printf("profiler:  %s (flavour %s)\n", name, fl)
	fmt.Printf("cycles:    %d (profiling %d, overhead %.3f%%)\n",
		m.Cycles, m.ProfilingCycles, m.Overhead()*100)
	fmt.Printf("calls:     %d; DCG edges: %d of %d (perfect)\n",
		m.Calls, graph.NumEdges(), perfect.Graph.NumEdges())
	fmt.Printf("accuracy:  %.1f (overlap with exhaustive profile)\n",
		profile.Accuracy(graph, perfect.Graph))
	fmt.Println()

	if *saveProfile != "" {
		f, err := os.Create(*saveProfile)
		if err != nil {
			fatal(err)
		}
		if _, err := graph.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "profile written to %s\n", *saveProfile)
	}

	methodName := func(id int) string {
		if id >= 0 && id < len(prog.Methods) {
			return prog.Methods[id].Name
		}
		return fmt.Sprintf("m%d", id)
	}
	dump := graph.Dump(methodName, prog.SiteDescription)
	lines := 0
	for i := 0; i < len(dump); i++ {
		fmt.Print(string(dump[i]))
		if dump[i] == '\n' {
			lines++
			if lines > *top {
				fmt.Println("  ...")
				break
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbsvm:", err)
	os.Exit(1)
}
