// Command cbsbench regenerates the paper's tables and figures on the
// MJ VM substrate. Each artifact of the evaluation section maps to a
// flag:
//
//	cbsbench -table 1            benchmark characteristics (Table 1)
//	cbsbench -table 2a           overhead/accuracy grid, Jikes RVM flavour
//	cbsbench -table 2b           overhead/accuracy grid, J9 flavour
//	cbsbench -table 3            per-benchmark base vs CBS breakdown
//	cbsbench -figure 5a          inlining speedups, Jikes RVM flavour
//	cbsbench -figure 5b          inlining speedups, J9 flavour
//	cbsbench -study convergence  accuracy vs time (E8)
//	cbsbench -study skew         initial-skip ablation (E9)
//	cbsbench -study comparators  §3 techniques side by side (E10)
//	cbsbench -study inliners     old vs new inliner (E11)
//	cbsbench -study context      calling-context-tree extension (E12)
//	cbsbench -study profilers    exhaustive vs CBS vs mincover accuracy/overhead
//	cbsbench -study planloop     fleet PGO loop: K pushers -> plan -> puller
//	cbsbench -study fleetsoak    chaos soak: fleet vs faults, invariant-gated
//	cbsbench -study fleetscale   federated ingest scaling: 1/4/16 leaves + root
//	cbsbench -study perf         perf trajectory: BENCH_<n>.json emission
//	cbsbench -all                everything above
//
// Use -quick for a cheap single-seed run on a benchmark subset, -input
// to pick small/large where applicable, and -benchmarks for a comma
// separated subset of the suite.
//
// Experiments fan their independent jobs over -parallel workers
// (default: GOMAXPROCS); output is byte-identical at any setting.
// -progress renders a live meter on stderr: jobs completed/total,
// modeled cycles simulated, wall-clock rate, and ETA.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gocbs/internal/bench"
	"gocbs/internal/experiment"
	"gocbs/internal/perf"
	"gocbs/internal/profiler"
	"gocbs/internal/runner"
)

func main() {
	table := flag.String("table", "", "regenerate a table: 1, 2a, 2b, or 3")
	figure := flag.String("figure", "", "regenerate a figure: 5a or 5b")
	study := flag.String("study", "", "run a study: convergence, skew, comparators, inliners, context, cleanup, online, entrycheck, profilers, planloop, fleetsoak, fleetscale, perf")
	perfOut := flag.String("perf-out", "", "perf study: write the BENCH report to this path (default: next free BENCH_<n>.json)")
	perfBaseline := flag.String("perf-baseline", "", "perf study: gate the run against this baseline BENCH_*.json")
	perfGate := flag.Float64("perf-gate", 0.10, "perf study: fail when geomean Mcyc/s regresses more than this fraction vs the baseline")
	all := flag.Bool("all", false, "regenerate every table, figure, and study")
	quick := flag.Bool("quick", false, "single seed and a four-benchmark subset")
	input := flag.String("input", "small", "input size for grids/figures/studies: small or large")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark subset (default: whole suite)")
	fullGrid := flag.Bool("full", false, "use the paper's full samples-per-tick row set in table 2")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for experiment jobs; 1 = serial (same output either way)")
	progress := flag.Bool("progress", false, "render a live job/cycle/ETA meter on stderr")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *quick {
		cfg = experiment.QuickConfig()
		sub, err := bench.Subset([]string{"compress", "jess", "javac", "mtrt"})
		if err != nil {
			fatal(err)
		}
		cfg.Benchmarks = sub
	}
	if *benchList != "" {
		sub, err := bench.Subset(strings.Split(*benchList, ","))
		if err != nil {
			fatal(err)
		}
		cfg.Benchmarks = sub
	}
	cfg.Parallel = *parallel
	if *progress {
		cfg.Progress = progressMeter()
	}

	ran := false
	run := func(name string, f func() error) {
		ran = true
		start := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if *progress {
			fmt.Fprintln(os.Stderr) // terminate the meter line
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	samples := experiment.DefaultSamples
	if *fullGrid {
		samples = experiment.FullSamples
	}

	wantTable := func(t string) bool { return *all || *table == t }
	wantFigure := func(f string) bool { return *all || *figure == f }
	wantStudy := func(s string) bool { return *all || *study == s }

	if wantTable("1") {
		run("table 1", func() error {
			rows, err := experiment.Table1(cfg)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatTable1(rows))
			return nil
		})
	}
	if wantTable("2a") {
		run("table 2a", func() error {
			cells, err := experiment.Table2(cfg, profiler.FlavourRVM, *input, experiment.DefaultStrides, samples)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatTable2("Table 2A: Jikes RVM flavour", cells, experiment.DefaultStrides, samples))
			return nil
		})
	}
	if wantTable("2b") {
		run("table 2b", func() error {
			cells, err := experiment.Table2(cfg, profiler.FlavourJ9, *input, experiment.DefaultStrides, samples)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatTable2("Table 2B: J9 flavour", cells, experiment.DefaultStrides, samples))
			return nil
		})
	}
	if wantTable("3") {
		run("table 3", func() error {
			params := experiment.DefaultTable3Params()
			rows, err := experiment.Table3(cfg, params)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatTable3(rows, params))
			return nil
		})
	}
	if wantFigure("5a") {
		run("figure 5a", func() error {
			rows, err := experiment.Figure5(cfg, experiment.Figure5Jikes, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatFigure5(experiment.Figure5Jikes, rows))
			return nil
		})
	}
	if wantFigure("5b") {
		run("figure 5b", func() error {
			rows, err := experiment.Figure5(cfg, experiment.Figure5J9, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatFigure5(experiment.Figure5J9, rows))
			return nil
		})
	}
	if wantStudy("convergence") {
		run("convergence", func() error {
			b := bench.ByName("javac")
			pts, err := experiment.Convergence(cfg, b, "large")
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatConvergence(b.Name+"-large", pts))
			return nil
		})
	}
	if wantStudy("skew") {
		run("skew", func() error {
			rows, err := experiment.SkewAblation(cfg, *input, 31, 16)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatSkew(rows, 31, 16))
			return nil
		})
	}
	if wantStudy("comparators") {
		run("comparators", func() error {
			rows, err := experiment.Comparators(cfg, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatComparators(rows))
			return nil
		})
	}
	if wantStudy("inliners") {
		run("inliners", func() error {
			rows, err := experiment.InlinerAblation(cfg, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatInliners(rows))
			return nil
		})
	}
	if wantStudy("cleanup") {
		run("cleanup", func() error {
			rows, err := experiment.CleanupAblation(cfg, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatCleanup(rows))
			return nil
		})
	}
	if wantStudy("online") {
		run("online", func() error {
			rows, err := experiment.Online(cfg, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatOnline(rows))
			return nil
		})
	}
	if wantStudy("entrycheck") {
		run("entrycheck", func() error {
			rows, err := experiment.EntryCheckStudy(cfg, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatEntryCheck(rows))
			return nil
		})
	}
	if wantStudy("context") {
		run("context", func() error {
			rows, err := experiment.ContextStudy(cfg, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatContext(rows))
			return nil
		})
	}
	if wantStudy("profilers") {
		run("profilers", func() error {
			rows, err := experiment.ProfilerStudy(cfg, *input)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatProfilers(rows))
			return nil
		})
	}
	if wantStudy("planloop") {
		run("planloop", func() error {
			rows, err := experiment.PlanLoop(cfg, *input, experiment.DefaultPlanLoopPushers)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatPlanLoop(rows))
			return nil
		})
	}
	if wantStudy("perf") {
		run("perf", func() error {
			params := experiment.DefaultPerfParams()
			if *quick {
				params = experiment.QuickPerfParams()
			}
			rep, err := experiment.PerfTrajectory(cfg, *input, params)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatPerf(rep))
			out := *perfOut
			if out == "" {
				out = nextBenchPath(".")
			}
			if err := rep.WriteFile(out); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "[perf report written to %s]\n", out)
			if *perfBaseline != "" {
				base, err := perf.ReadFile(*perfBaseline)
				if err != nil {
					return fmt.Errorf("baseline: %w", err)
				}
				if err := perf.Gate(rep, base, *perfGate); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "[perf gate vs %s passed at %.0f%%]\n", *perfBaseline, *perfGate*100)
			}
			return nil
		})
	}
	if wantStudy("fleetscale") {
		run("fleetscale", func() error {
			params := experiment.DefaultPerfParams()
			if *quick {
				params = experiment.QuickPerfParams()
			}
			fs, err := experiment.FleetScale(params)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatFleetScale(fs))
			return nil
		})
	}
	if wantStudy("fleetsoak") {
		run("fleetsoak", func() error {
			params := experiment.DefaultFleetSoakParams()
			if *quick {
				params = experiment.QuickFleetSoakParams()
			}
			rep, err := experiment.FleetSoak(cfg, params)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatFleetSoak(rep))
			return nil
		})
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbsbench:", err)
	os.Exit(1)
}

// nextBenchPath returns the first BENCH_<n>.json (n from 1) that does
// not exist in dir, so successive perf runs append to the trajectory
// instead of clobbering the checked-in baseline.
func nextBenchPath(dir string) string {
	for n := 1; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p
		}
	}
}

// progressMeter returns a runner progress hook that redraws one stderr
// line per ~100 ms: jobs completed/total, modeled megacycles simulated,
// simulation rate, and ETA. Experiments run sequentially and the pool
// serializes hook calls, so the unsynchronized lastDraw is safe.
func progressMeter() func(runner.Progress) {
	var lastDraw time.Time
	return func(p runner.Progress) {
		now := time.Now()
		if p.JobsDone < p.JobsTotal && now.Sub(lastDraw) < 100*time.Millisecond {
			return
		}
		lastDraw = now
		fmt.Fprintf(os.Stderr, "\r[%d/%d jobs  %.0f Mcyc  %.1f Mcyc/s  ETA %v]   ",
			p.JobsDone, p.JobsTotal, p.Mcyc(), p.Rate(),
			p.ETA().Round(time.Second))
	}
}
