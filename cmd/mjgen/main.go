// Command mjgen emits random, well-typed, terminating MJ programs from
// the differential-testing generator — useful for fuzzing the pipeline
// from the outside or producing synthetic workloads.
//
//	mjgen -seed 7 -size 4                  print the program
//	mjgen -seed 7 -shape megamorphic       print an adversarially shaped one
//	mjgen -seed 7 -workload                print a setup/iter protocol program
//	mjgen -seed 7 -run -arg 13             generate, compile, and run it
//	mjgen -seed 7 -check                   cross-check the VM against the
//	                                       reference AST interpreter
//
// Every failure mode exits non-zero and echoes the generator
// coordinates (seed, size, shape) so the case replays with one command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gocbs/internal/mj"
	"gocbs/internal/vm"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its edges injected, so the CLI contract —
// exit codes, seed echoes, divergence reports — is unit-testable.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mjgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "generator seed")
	size := fs.Int("size", 4, "program size knob (1-8 is sensible)")
	shape := fs.String("shape", "", "adversarial shape: one of "+strings.Join(shapeNames(), ", "))
	workload := fs.Bool("workload", false, "emit a setup/iter benchmark-protocol program")
	run := fs.Bool("run", false, "compile and run the generated program")
	check := fs.Bool("check", false, "execute both the VM and the reference interpreter and compare")
	arg := fs.Int64("arg", 10, "argument passed to main")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	replay := fmt.Sprintf("replay: mjgen -seed %d -size %d", *seed, *size)
	if *shape != "" {
		replay += " -shape " + *shape
	}
	if *workload {
		replay += " -workload"
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "mjgen: %v\n%s\n", err, replay)
		return 1
	}

	if !mj.ValidShape(*shape) {
		return fail(fmt.Errorf("unknown shape %q (want one of %s)", *shape, strings.Join(shapeNames(), ", ")))
	}
	var src string
	if *workload {
		src = mj.GenerateWorkload(*seed, *size, *shape)
	} else {
		src = mj.GenerateShaped(*seed, *size, *shape)
	}
	if !*run && !*check {
		fmt.Fprint(stdout, src)
		return 0
	}

	prog, err := mj.Compile(src)
	if err != nil {
		return fail(fmt.Errorf("generated program failed to compile (generator bug): %w", err))
	}
	m := vm.New(prog)
	m.MaxSteps = 200_000_000
	v, err := m.Run(*arg)
	if err != nil {
		return fail(fmt.Errorf("vm run: %w", err))
	}
	if *run {
		for _, o := range m.Output {
			fmt.Fprintln(stdout, o)
		}
		fmt.Fprintf(stdout, "result: %d  (%d instructions, %d calls)\n", v.I, m.Instrs, m.Calls)
	}

	if *check {
		toks, err := mj.Lex(src)
		if err != nil {
			return fail(err)
		}
		ast, err := mj.Parse(toks)
		if err != nil {
			return fail(err)
		}
		if err := mj.Check(ast); err != nil {
			return fail(err)
		}
		ref := mj.NewRefInterp(ast, 100_000_000)
		rr, err := ref.CallFunction("main", *arg)
		if err != nil {
			return fail(fmt.Errorf("reference interpreter: %w", err))
		}
		if diff := diverge(v.I, rr, m.Output, ref.Output); diff != "" {
			fmt.Fprintf(stderr, "mjgen: DIVERGENCE: %s\n%s\ngenerated source:\n%s", diff, replay, src)
			return 1
		}
		fmt.Fprintln(stdout, "reference interpreter agrees")
	}
	return 0
}

// diverge compares results and outputs element-wise; empty means equal.
func diverge(vmR, refR int64, vmO, refO []int64) string {
	if vmR != refR {
		return fmt.Sprintf("result vm=%d ref=%d", vmR, refR)
	}
	if len(vmO) != len(refO) {
		return fmt.Sprintf("output length vm=%d ref=%d", len(vmO), len(refO))
	}
	for i := range vmO {
		if vmO[i] != refO[i] {
			return fmt.Sprintf("output[%d] vm=%d ref=%d", i, vmO[i], refO[i])
		}
	}
	return ""
}

func shapeNames() []string {
	names := mj.Shapes()
	out := make([]string, len(names))
	for i, s := range names {
		if s == "" {
			s = "default (empty)"
		}
		out[i] = s
	}
	return out
}
