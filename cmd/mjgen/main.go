// Command mjgen emits random, well-typed, terminating MJ programs from
// the differential-testing generator — useful for fuzzing the pipeline
// from the outside or producing synthetic workloads.
//
//	mjgen -seed 7 -size 4                print the program
//	mjgen -seed 7 -run -arg 13           generate, compile, and run it
//	mjgen -seed 7 -check                 also cross-check the VM against
//	                                     the reference AST interpreter
package main

import (
	"flag"
	"fmt"
	"os"

	"gocbs/internal/mj"
	"gocbs/internal/vm"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed")
	size := flag.Int("size", 4, "program size knob (1-8 is sensible)")
	run := flag.Bool("run", false, "compile and run the generated program")
	check := flag.Bool("check", false, "with -run: also execute the reference interpreter and compare")
	arg := flag.Int64("arg", 10, "argument passed to main")
	flag.Parse()

	src := mj.GenerateProgram(*seed, *size)
	if !*run {
		fmt.Print(src)
		return
	}

	prog, err := mj.Compile(src)
	if err != nil {
		fatal(fmt.Errorf("generated program failed to compile (generator bug): %w", err))
	}
	m := vm.New(prog)
	m.MaxSteps = 200_000_000
	v, err := m.Run(*arg)
	if err != nil {
		fatal(err)
	}
	for _, o := range m.Output {
		fmt.Println(o)
	}
	fmt.Printf("result: %d  (%d instructions, %d calls)\n", v.I, m.Instrs, m.Calls)

	if *check {
		toks, err := mj.Lex(src)
		if err != nil {
			fatal(err)
		}
		ast, err := mj.Parse(toks)
		if err != nil {
			fatal(err)
		}
		if err := mj.Check(ast); err != nil {
			fatal(err)
		}
		ref := mj.NewRefInterp(ast, 100_000_000)
		rr, err := ref.CallFunction("main", *arg)
		if err != nil {
			fatal(fmt.Errorf("reference interpreter: %w", err))
		}
		if rr != v.I || len(ref.Output) != len(m.Output) {
			fatal(fmt.Errorf("DIVERGENCE: vm=%d ref=%d (outputs %d vs %d)", v.I, rr, len(m.Output), len(ref.Output)))
		}
		fmt.Println("reference interpreter agrees")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mjgen:", err)
	os.Exit(1)
}
