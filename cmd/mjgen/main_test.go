package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestPrintDefault(t *testing.T) {
	code, out, _ := runCLI(t, "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "int main(int n)") {
		t.Fatalf("no main in output:\n%s", out)
	}
}

func TestCheckWithoutRun(t *testing.T) {
	// -check used to silently print nothing and exit 0 without -run;
	// it must actually run the comparison on its own.
	code, out, _ := runCLI(t, "-seed", "5", "-check")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "reference interpreter agrees") {
		t.Fatalf("-check alone did not run the comparison:\n%s", out)
	}
}

func TestCheckEveryShape(t *testing.T) {
	for _, shape := range []string{"", "megamorphic", "phaseshift", "deepvirt", "closureheavy"} {
		args := []string{"-seed", "9", "-size", "3", "-check"}
		if shape != "" {
			args = append(args, "-shape", shape)
		}
		code, out, errb := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("shape %q: exit %d\n%s", shape, code, errb)
		}
		if !strings.Contains(out, "reference interpreter agrees") {
			t.Fatalf("shape %q: no agreement line:\n%s", shape, out)
		}
	}
}

func TestWorkloadProtocol(t *testing.T) {
	code, out, _ := runCLI(t, "-seed", "4", "-workload")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"void setup(int size)", "int iter()", "int main(int size)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("workload output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runCLI(t, "-seed", "4", "-workload", "-check"); code != 0 {
		t.Fatalf("workload -check exit %d", code)
	}
}

func TestBadShapeFailsWithSeedEcho(t *testing.T) {
	code, _, errb := runCLI(t, "-seed", "11", "-shape", "bogus")
	if code == 0 {
		t.Fatal("bad shape exited 0")
	}
	if !strings.Contains(errb, "replay: mjgen -seed 11") {
		t.Fatalf("failure did not echo the seed:\n%s", errb)
	}
}

func TestDivergenceReporting(t *testing.T) {
	// diverge is the element-wise comparator behind DIVERGENCE reports;
	// a same-length output with one differing element must be caught
	// (the old length-only compare missed exactly this).
	if d := diverge(1, 1, []int64{1, 2, 3}, []int64{1, 9, 3}); !strings.Contains(d, "output[1]") {
		t.Fatalf("element-wise mismatch not reported: %q", d)
	}
	if d := diverge(1, 2, nil, nil); !strings.Contains(d, "result") {
		t.Fatalf("result mismatch not reported: %q", d)
	}
	if d := diverge(1, 1, []int64{1}, []int64{1, 2}); !strings.Contains(d, "length") {
		t.Fatalf("length mismatch not reported: %q", d)
	}
	if d := diverge(7, 7, []int64{4, 5}, []int64{4, 5}); d != "" {
		t.Fatalf("equal runs reported divergent: %q", d)
	}
}
