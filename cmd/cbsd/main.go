// Command cbsd is the DCG aggregation daemon: a long-running HTTP
// service that ingests dynamic call graph snapshots pushed by profiling
// VMs (cbsvm -push), merges them into a sharded concurrent store, and
// serves query endpoints over the fleet-wide graph — the centralized
// "exploit" half of the paper's collect-and-exploit loop, scaled from
// one VM to many.
//
//	cbsd -addr :8944
//	cbsd -addr :8944 -shards 64 -decay 0.5 -decay-every 30s
//	cbsd -addr :8944 -state-dir /var/lib/cbsd -checkpoint-every 30s
//
// With -state-dir the daemon is durable: the store is checkpointed to
// disk periodically and on graceful shutdown (SIGINT/SIGTERM drains
// in-flight requests, stops the decay ticker, and writes a final
// checkpoint), and a restarted daemon reloads the checkpoint — graph
// and per-pusher ingest sequences — so the fleet graph survives
// restarts and pusher retries stay deduplicated across them.
//
// Endpoints (all under /v1; the flat pre-versioning paths remain as
// aliases for one release — see internal/api):
//
//	POST /v1/ingest    merge a serialized DCG snapshot into the store
//	                   (X-Cbs-Pusher/X-Cbs-Seq headers make it idempotent)
//	GET  /v1/snapshot  stream the merged DCG (binary wire format)
//	GET  /v1/top?k=N   heaviest N edges as JSON
//	GET  /v1/site?id=N receiver-target distribution at one call site
//	GET  /v1/overlap   overlap of the store against a reference DCG
//	                   carried in the request body
//	POST /v1/decay     run one decay epoch (?factor=, optional ?prune=)
//	GET  /v1/plan      compiled inlining plan (?program=)
//	GET  /v1/metrics   operational counters (JSON)
//	GET  /v1/healthz   liveness probe
//	POST /v1/flush     leaf only: forward the accumulated delta upstream now
//	POST /v1/register  root side: leaf registration/heartbeat
//	GET  /v1/leaves    root side: registered leaves
//
// Federation: with -upstream the daemon runs as a LEAF in a two-level
// aggregation tree. It still ingests from its shard of pushers, but
// forwards merged deltas to the root over the same idempotent delta
// protocol (the leaf is a pusher in its own right, with its own
// identity and sequence stream), relays the root's compiled plans to
// its pullers through an ETag cache, and never decays locally — decay
// runs once, at the root.
//
//	cbsd -addr :9000                                  # root
//	cbsd -addr :9001 -upstream http://localhost:9000  # leaf
//
// The daemon itself lives in internal/daemon so tests and the fleet
// simulator (internal/fleetsim, cmd/cbsload) can run the identical
// lifecycle in-process; this command is the flag-parsing shell.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gocbs/internal/daemon"
	"gocbs/internal/dcgstore"
	"gocbs/internal/plan"
)

func main() {
	var cfg daemon.Config
	flag.StringVar(&cfg.Addr, "addr", ":8944", "listen address")
	flag.IntVar(&cfg.Shards, "shards", dcgstore.DefaultShards, "store shard count (rounded up to a power of two)")
	flag.Float64Var(&cfg.Decay, "decay", 0, "periodic decay factor in (0,1]; 0 disables background decay")
	flag.DurationVar(&cfg.DecayEvery, "decay-every", time.Minute, "interval between background decay epochs")
	flag.Float64Var(&cfg.DecayPrune, "decay-prune", 1e-6, "drop edges whose decayed weight falls below this")
	flag.StringVar(&cfg.StateDir, "state-dir", "", "directory for durable checkpoints; empty keeps the store memory-only")
	flag.DurationVar(&cfg.CheckpointEvery, "checkpoint-every", dcgstore.DefaultCheckpointEvery, "interval between periodic checkpoints (with -state-dir)")
	flag.DurationVar(&cfg.ReadTimeout, "read-timeout", 30*time.Second, "HTTP server read timeout")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", 60*time.Second, "HTTP server write timeout")
	flag.Int64Var(&cfg.MaxUploadBytes, "max-upload", daemon.DefaultMaxUploadBytes, "largest accepted ingest/overlap body in bytes (413 beyond)")
	flag.DurationVar(&cfg.VersionTTL, "version-ttl", 0, "evict a retired program version's graph after this much write-idle time (0 keeps retired versions)")
	defaults := plan.DefaultParams()
	flag.StringVar(&cfg.PlanPolicy, "plan-policy", defaults.Policy, "inline policy plans are compiled under (new-linear, old-jikes, j9-static, j9-dynamic)")
	flag.Float64Var(&cfg.PlanFloor, "plan-floor", defaults.MinWeight, "plan stability: drop edges below this weight before planning")
	flag.Float64Var(&cfg.PlanBand, "plan-band", defaults.Band, "plan stability: geometric weight-quantization band (0 disables)")
	flag.Float64Var(&cfg.PlanHold, "plan-hold", defaults.HoldSharePct, "plan stability: retain a prior decision while its site holds at least this %% of graph weight")
	flag.StringVar(&cfg.Upstream, "upstream", "", "root daemon base URL; set to run as a federation leaf")
	flag.StringVar(&cfg.UpstreamID, "upstream-id", "", "leaf identity for the upstream sequence stream (default: persisted, else random)")
	flag.StringVar(&cfg.SelfURL, "self-url", "", "base URL this leaf advertises when registering with the root")
	flag.DurationVar(&cfg.ForwardEvery, "forward-every", time.Second, "leaf delta-forward and heartbeat cadence (with -upstream)")
	role := flag.String("role", "", "optional role assertion: 'root' or 'leaf'; fails fast when it contradicts -upstream")
	flag.Parse()

	if cfg.Decay < 0 || cfg.Decay > 1 {
		log.Fatalf("cbsd: -decay %v out of range (0,1]", cfg.Decay)
	}
	if _, err := plan.PolicyByName(cfg.PlanPolicy); err != nil {
		log.Fatalf("cbsd: %v", err)
	}
	switch *role {
	case "":
	case "root":
		if cfg.Upstream != "" {
			log.Fatalf("cbsd: -role root contradicts -upstream %s", cfg.Upstream)
		}
	case "leaf":
		if cfg.Upstream == "" {
			log.Fatalf("cbsd: -role leaf requires -upstream")
		}
	default:
		log.Fatalf("cbsd: -role %q must be 'root' or 'leaf'", *role)
	}
	if cfg.UpstreamID != "" && !dcgstore.ValidPusherID(cfg.UpstreamID) {
		log.Fatalf("cbsd: -upstream-id %q invalid: need 1-128 chars of [A-Za-z0-9._:-]", cfg.UpstreamID)
	}
	cfg.Logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := daemon.Run(ctx, cfg); err != nil {
		log.Fatalf("cbsd: %v", err)
	}
}
