// Command cbsd is the DCG aggregation daemon: a long-running HTTP
// service that ingests dynamic call graph snapshots pushed by profiling
// VMs (cbsvm -push), merges them into a sharded concurrent store, and
// serves query endpoints over the fleet-wide graph — the centralized
// "exploit" half of the paper's collect-and-exploit loop, scaled from
// one VM to many.
//
//	cbsd -addr :8944
//	cbsd -addr :8944 -shards 64 -decay 0.5 -decay-every 30s
//
// Endpoints:
//
//	POST /ingest     merge a serialized DCG snapshot into the store
//	GET  /snapshot   stream the merged DCG (binary wire format)
//	GET  /top?k=N    heaviest N edges as JSON
//	GET  /site?id=N  receiver-target distribution at one call site
//	POST /overlap    overlap of the store against an uploaded reference DCG
//	POST /decay      run one decay epoch (?factor=, optional ?prune=)
//	GET  /metrics    operational counters (JSON)
//	GET  /healthz    liveness probe
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"gocbs/internal/dcgstore"
)

func main() {
	addr := flag.String("addr", ":8944", "listen address")
	shards := flag.Int("shards", dcgstore.DefaultShards, "store shard count (rounded up to a power of two)")
	decay := flag.Float64("decay", 0, "periodic decay factor in (0,1]; 0 disables background decay")
	decayEvery := flag.Duration("decay-every", time.Minute, "interval between background decay epochs")
	decayPrune := flag.Float64("decay-prune", 1e-6, "drop edges whose decayed weight falls below this")
	flag.Parse()

	if *decay < 0 || *decay > 1 {
		log.Fatalf("cbsd: -decay %v out of range (0,1]", *decay)
	}

	store := dcgstore.New(*shards)
	srv := newServer(store)

	if *decay > 0 {
		go func() {
			for range time.Tick(*decayEvery) {
				pruned := store.Decay(*decay, *decayPrune)
				log.Printf("decay epoch %d: factor %v, pruned %d edges, %d remain",
					store.Epoch(), *decay, pruned, store.NumEdges())
			}
		}()
	}

	log.Printf("cbsd listening on %s (%d shards, decay %s)",
		*addr, store.NumShards(), decayDesc(*decay, *decayEvery))
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		log.Fatalf("cbsd: %v", err)
	}
}

func decayDesc(factor float64, every time.Duration) string {
	if factor == 0 {
		return "off"
	}
	return fmt.Sprintf("%v every %s", factor, every)
}
