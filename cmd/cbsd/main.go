// Command cbsd is the DCG aggregation daemon: a long-running HTTP
// service that ingests dynamic call graph snapshots pushed by profiling
// VMs (cbsvm -push), merges them into a sharded concurrent store, and
// serves query endpoints over the fleet-wide graph — the centralized
// "exploit" half of the paper's collect-and-exploit loop, scaled from
// one VM to many.
//
//	cbsd -addr :8944
//	cbsd -addr :8944 -shards 64 -decay 0.5 -decay-every 30s
//	cbsd -addr :8944 -state-dir /var/lib/cbsd -checkpoint-every 30s
//
// With -state-dir the daemon is durable: the store is checkpointed to
// disk periodically and on graceful shutdown (SIGINT/SIGTERM drains
// in-flight requests, stops the decay ticker, and writes a final
// checkpoint), and a restarted daemon reloads the checkpoint — graph
// and per-pusher ingest sequences — so the fleet graph survives
// restarts and pusher retries stay deduplicated across them.
//
// Endpoints:
//
//	POST /ingest     merge a serialized DCG snapshot into the store
//	                 (X-Cbs-Pusher/X-Cbs-Seq headers make it idempotent)
//	GET  /snapshot   stream the merged DCG (binary wire format)
//	GET  /top?k=N    heaviest N edges as JSON
//	GET  /site?id=N  receiver-target distribution at one call site
//	POST /overlap    overlap of the store against an uploaded reference DCG
//	POST /decay      run one decay epoch (?factor=, optional ?prune=)
//	GET  /metrics    operational counters (JSON)
//	GET  /healthz    liveness probe
//
// The daemon itself lives in internal/daemon so tests and the fleet
// simulator (internal/fleetsim, cmd/cbsload) can run the identical
// lifecycle in-process; this command is the flag-parsing shell.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gocbs/internal/daemon"
	"gocbs/internal/dcgstore"
	"gocbs/internal/plan"
)

func main() {
	var cfg daemon.Config
	flag.StringVar(&cfg.Addr, "addr", ":8944", "listen address")
	flag.IntVar(&cfg.Shards, "shards", dcgstore.DefaultShards, "store shard count (rounded up to a power of two)")
	flag.Float64Var(&cfg.Decay, "decay", 0, "periodic decay factor in (0,1]; 0 disables background decay")
	flag.DurationVar(&cfg.DecayEvery, "decay-every", time.Minute, "interval between background decay epochs")
	flag.Float64Var(&cfg.DecayPrune, "decay-prune", 1e-6, "drop edges whose decayed weight falls below this")
	flag.StringVar(&cfg.StateDir, "state-dir", "", "directory for durable checkpoints; empty keeps the store memory-only")
	flag.DurationVar(&cfg.CheckpointEvery, "checkpoint-every", dcgstore.DefaultCheckpointEvery, "interval between periodic checkpoints (with -state-dir)")
	flag.DurationVar(&cfg.ReadTimeout, "read-timeout", 30*time.Second, "HTTP server read timeout")
	flag.DurationVar(&cfg.WriteTimeout, "write-timeout", 60*time.Second, "HTTP server write timeout")
	flag.Int64Var(&cfg.MaxUploadBytes, "max-upload", daemon.DefaultMaxUploadBytes, "largest accepted ingest/overlap body in bytes (413 beyond)")
	defaults := plan.DefaultParams()
	flag.StringVar(&cfg.PlanPolicy, "plan-policy", defaults.Policy, "inline policy plans are compiled under (new-linear, old-jikes, j9-static, j9-dynamic)")
	flag.Float64Var(&cfg.PlanFloor, "plan-floor", defaults.MinWeight, "plan stability: drop edges below this weight before planning")
	flag.Float64Var(&cfg.PlanBand, "plan-band", defaults.Band, "plan stability: geometric weight-quantization band (0 disables)")
	flag.Float64Var(&cfg.PlanHold, "plan-hold", defaults.HoldSharePct, "plan stability: retain a prior decision while its site holds at least this %% of graph weight")
	flag.Parse()

	if cfg.Decay < 0 || cfg.Decay > 1 {
		log.Fatalf("cbsd: -decay %v out of range (0,1]", cfg.Decay)
	}
	if _, err := plan.PolicyByName(cfg.PlanPolicy); err != nil {
		log.Fatalf("cbsd: %v", err)
	}
	cfg.Logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := daemon.Run(ctx, cfg); err != nil {
		log.Fatalf("cbsd: %v", err)
	}
}
