// Command cbsd is the DCG aggregation daemon: a long-running HTTP
// service that ingests dynamic call graph snapshots pushed by profiling
// VMs (cbsvm -push), merges them into a sharded concurrent store, and
// serves query endpoints over the fleet-wide graph — the centralized
// "exploit" half of the paper's collect-and-exploit loop, scaled from
// one VM to many.
//
//	cbsd -addr :8944
//	cbsd -addr :8944 -shards 64 -decay 0.5 -decay-every 30s
//	cbsd -addr :8944 -state-dir /var/lib/cbsd -checkpoint-every 30s
//
// With -state-dir the daemon is durable: the store is checkpointed to
// disk periodically and on graceful shutdown (SIGINT/SIGTERM drains
// in-flight requests, stops the decay ticker, and writes a final
// checkpoint), and a restarted daemon reloads the checkpoint — graph
// and per-pusher ingest sequences — so the fleet graph survives
// restarts and pusher retries stay deduplicated across them.
//
// Endpoints:
//
//	POST /ingest     merge a serialized DCG snapshot into the store
//	                 (X-Cbs-Pusher/X-Cbs-Seq headers make it idempotent)
//	GET  /snapshot   stream the merged DCG (binary wire format)
//	GET  /top?k=N    heaviest N edges as JSON
//	GET  /site?id=N  receiver-target distribution at one call site
//	POST /overlap    overlap of the store against an uploaded reference DCG
//	POST /decay      run one decay epoch (?factor=, optional ?prune=)
//	GET  /metrics    operational counters (JSON)
//	GET  /healthz    liveness probe
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"gocbs/internal/bench"
	"gocbs/internal/bytecode"
	"gocbs/internal/dcgstore"
	"gocbs/internal/inline"
	"gocbs/internal/plan"
)

// config is everything main parses from flags; run takes it whole so
// tests can drive the full daemon lifecycle in-process.
type config struct {
	addr            string
	shards          int
	decay           float64
	decayEvery      time.Duration
	decayPrune      float64
	stateDir        string
	checkpointEvery time.Duration
	readTimeout     time.Duration
	writeTimeout    time.Duration
	planPolicy      string
	planFloor       float64
	planBand        float64
	planHold        float64

	// ready, when non-nil, receives the bound listen address once the
	// daemon is serving (tests bind :0).
	ready chan<- string
	logf  func(format string, args ...any)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8944", "listen address")
	flag.IntVar(&cfg.shards, "shards", dcgstore.DefaultShards, "store shard count (rounded up to a power of two)")
	flag.Float64Var(&cfg.decay, "decay", 0, "periodic decay factor in (0,1]; 0 disables background decay")
	flag.DurationVar(&cfg.decayEvery, "decay-every", time.Minute, "interval between background decay epochs")
	flag.Float64Var(&cfg.decayPrune, "decay-prune", 1e-6, "drop edges whose decayed weight falls below this")
	flag.StringVar(&cfg.stateDir, "state-dir", "", "directory for durable checkpoints; empty keeps the store memory-only")
	flag.DurationVar(&cfg.checkpointEvery, "checkpoint-every", dcgstore.DefaultCheckpointEvery, "interval between periodic checkpoints (with -state-dir)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 30*time.Second, "HTTP server read timeout")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 60*time.Second, "HTTP server write timeout")
	defaults := plan.DefaultParams()
	flag.StringVar(&cfg.planPolicy, "plan-policy", defaults.Policy, "inline policy plans are compiled under (new-linear, old-jikes, j9-static, j9-dynamic)")
	flag.Float64Var(&cfg.planFloor, "plan-floor", defaults.MinWeight, "plan stability: drop edges below this weight before planning")
	flag.Float64Var(&cfg.planBand, "plan-band", defaults.Band, "plan stability: geometric weight-quantization band (0 disables)")
	flag.Float64Var(&cfg.planHold, "plan-hold", defaults.HoldSharePct, "plan stability: retain a prior decision while its site holds at least this %% of graph weight")
	flag.Parse()

	if cfg.decay < 0 || cfg.decay > 1 {
		log.Fatalf("cbsd: -decay %v out of range (0,1]", cfg.decay)
	}
	if _, err := plan.PolicyByName(cfg.planPolicy); err != nil {
		log.Fatalf("cbsd: %v", err)
	}
	cfg.logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		log.Fatalf("cbsd: %v", err)
	}
}

// run brings the daemon up and serves until ctx is cancelled (a
// signal, in production), then shuts down gracefully: the listener
// closes, in-flight requests drain, the decay and checkpoint tickers
// stop, and — with a state dir — a final checkpoint is written so a
// graceful restart loses nothing.
func run(ctx context.Context, cfg config) error {
	logf := cfg.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	store := dcgstore.New(cfg.shards)
	if cfg.stateDir != "" {
		loaded, err := dcgstore.RestoreCheckpoint(store, cfg.stateDir)
		if err != nil {
			return fmt.Errorf("restore %s: %w", cfg.stateDir, err)
		}
		if loaded {
			st := store.Stats()
			logf("restored checkpoint from %s: %d edges, %.0f weight, %d pushers",
				cfg.stateDir, st.Edges, st.TotalWeight, st.Pushers)
		} else {
			logf("no checkpoint in %s, starting fresh", cfg.stateDir)
		}
	}

	plans := newPlanService(cfg, store, logf)

	srv := &http.Server{
		Handler:           newServer(store, plans).handler(),
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logf("cbsd listening on %s (%d shards, decay %s, state %s)",
		ln.Addr(), store.NumShards(), decayDesc(cfg.decay, cfg.decayEvery), stateDesc(cfg))
	if cfg.ready != nil {
		cfg.ready <- ln.Addr().String()
	}

	// Background loops: decay and periodic checkpoints. Both are wired
	// into the shutdown path — bg.Wait() below guarantees neither a
	// decay epoch nor a periodic checkpoint races the final checkpoint.
	bgCtx, stopBg := context.WithCancel(context.Background())
	defer stopBg()
	var bg sync.WaitGroup
	if cfg.decay > 0 {
		bg.Add(1)
		go func() {
			defer bg.Done()
			ticker := time.NewTicker(cfg.decayEvery)
			defer ticker.Stop()
			for {
				select {
				case <-bgCtx.Done():
					return
				case <-ticker.C:
					pruned := store.Decay(cfg.decay, cfg.decayPrune)
					logf("decay epoch %d: factor %v, pruned %d edges, %d remain",
						store.Epoch(), cfg.decay, pruned, store.NumEdges())
					plans.RefreshAll()
				}
			}
		}()
	}
	if cfg.stateDir != "" {
		bg.Add(1)
		go func() {
			defer bg.Done()
			ckpt := &dcgstore.Checkpointer{
				Dir: cfg.stateDir, Store: store, Every: cfg.checkpointEvery, Logf: logf,
			}
			ckpt.Run(bgCtx)
		}()
		// Keep persisted plans fresh at the same cadence as checkpoints:
		// a durable daemon re-plans on the checkpoint tick, not just on
		// demand, so the plan files a restart restores from are recent.
		bg.Add(1)
		go func() {
			defer bg.Done()
			ticker := time.NewTicker(cfg.checkpointEvery)
			defer ticker.Stop()
			for {
				select {
				case <-bgCtx.Done():
					return
				case <-ticker.C:
					plans.RefreshAll()
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopBg()
		bg.Wait()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: drain in-flight requests first so their
	// merges make the final checkpoint, then stop the background
	// tickers, then checkpoint.
	logf("shutting down: draining requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(drainCtx)
	stopBg()
	bg.Wait()
	if cfg.stateDir != "" {
		if err := dcgstore.SaveCheckpoint(cfg.stateDir, store); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		st := store.Stats()
		logf("final checkpoint written to %s (%d edges, %.0f weight)", cfg.stateDir, st.Edges, st.TotalWeight)
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	<-serveErr // Serve returns ErrServerClosed once Shutdown begins
	return nil
}

// newPlanService builds the inlining-plan compiler over the live
// store. Programs are resolved against the built-in benchmark suite
// and prepared exactly the way cbsvm prepares them (JIT-only: trivial
// same-class inlining, no profile-driven decisions), so the global
// call-site IDs the plan keys on line up with every VM's clone of the
// same program. With -state-dir, compiled plans persist next to the
// store checkpoints and epochs survive restarts.
func newPlanService(cfg config, store *dcgstore.Store, logf func(string, ...any)) *plan.Service {
	params := plan.DefaultParams()
	if cfg.planPolicy != "" {
		params.Policy = cfg.planPolicy
	}
	params.MinWeight = cfg.planFloor
	params.Band = cfg.planBand
	params.HoldSharePct = cfg.planHold
	return plan.NewService(plan.ServiceConfig{
		Source:  store.Snapshot,
		Version: store.Version,
		CompileProgram: func(name string) (*bytecode.Program, error) {
			b := bench.ByName(name)
			if b == nil {
				return nil, fmt.Errorf("%w: no benchmark named %q", plan.ErrUnknownProgram, name)
			}
			prog, err := b.Compile()
			if err != nil {
				return nil, fmt.Errorf("compile %s: %w", name, err)
			}
			if _, err := inline.Optimize(prog, inline.Trivial{}, nil, inline.DefaultOptions()); err != nil {
				return nil, fmt.Errorf("prepare %s: %w", name, err)
			}
			return prog, nil
		},
		Params:   params,
		StateDir: cfg.stateDir,
		Logf:     logf,
	})
}

func decayDesc(factor float64, every time.Duration) string {
	if factor == 0 {
		return "off"
	}
	return fmt.Sprintf("%v every %s", factor, every)
}

func stateDesc(cfg config) string {
	if cfg.stateDir == "" {
		return "memory-only"
	}
	return fmt.Sprintf("%s every %s", cfg.stateDir, cfg.checkpointEvery)
}
