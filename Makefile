GO ?= go

.PHONY: all tier1 build test test-race vet ci bench

all: tier1

# Tier-1 verification: the gate every PR must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage for the concurrent layers: the parallel experiment
# runner, the experiments that fan out over it, and the profilers the
# jobs drive.
test-race:
	$(GO) test -race ./internal/runner/... ./internal/experiment/... ./internal/profiler/...

vet:
	$(GO) vet ./...

ci: tier1 vet test-race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
