GO ?= go

# Every command binary, built explicitly by `make build-cmds` so ci
# catches a cmd that ./... would skip (e.g. after a package rename).
CMDS := ./cmd/cbsbench ./cmd/cbsd ./cmd/cbsload ./cmd/cbsvm ./cmd/dcgdiff ./cmd/mjc ./cmd/mjgen

# Seed for the reproducible short soak `make test-fleet` runs in ci;
# `make soak` picks a fresh one per invocation and prints it, so a
# failing soak is always reproducible with SOAK_SEED=<printed seed>.
FLEET_SEED ?= 1
SOAK_SEED ?= 0
# Generator seed for `make soak-gen`: 0 means "pick one per invocation"
# (derived from the clock below); the target echoes the seed so a failure
# replays with GEN_SEED=<printed seed>.
GEN_SEED ?= 0

.PHONY: all tier1 build build-cmds test test-race test-daemon test-recovery test-plan test-fleet test-federation test-upgrade test-mincover test-workload soak soak-gen vet vet-cmds ci bench bench-smoke bench-baseline

all: tier1

# Tier-1 verification: the gate every PR must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

build-cmds:
	$(GO) build $(CMDS)

# Race coverage for the concurrent layers: the parallel experiment
# runner, the experiments that fan out over it, the profilers the jobs
# drive, the sharded concurrent DCG store (its soak test is the
# K-writers-vs-serial-reference check plus the decay-race property
# test), the inline transform's clone isolation soak, the plan
# service's version-cached compilation, the in-process daemon, the
# pulling VM, and the chaos fleet simulator.
test-race:
	$(GO) test -race ./internal/runner/... ./internal/experiment/... ./internal/profiler/... ./internal/bytecode/... ./internal/dcgstore/... ./internal/inline/... ./internal/mj/... ./internal/plan/... ./internal/daemon/... ./internal/puller/... ./internal/fleetsim/... ./internal/federation/... ./internal/api/... ./internal/mincover/...

# The cbsd aggregation daemon's httptest-based endpoint tests, the
# hostile-pusher fuzz corpus, and the runner-driven multi-pusher
# convergence test (the daemon lives in internal/daemon; cmd/cbsd is a
# thin main).
test-daemon:
	$(GO) test ./internal/daemon/...

# Durability and exactly-once delivery, under the race detector: the
# checkpoint round trip, sequence dedup, the flaky-pusher soak (a
# daemon that drops responses while pushers retry), and the SIGTERM
# kill-and-restart lifecycle.
test-recovery:
	$(GO) test -race -run 'Checkpoint|Restore|Sequence|Sequenced|Duplicate|Dedup|Flaky|Retr|Outage|GiveUp|Sigterm|Corrupt' ./internal/dcgstore/... ./internal/daemon/...

# The fleet PGO loop: plan wire round trip + rejection paths, the
# fuzz seed corpus, stability/determinism properties, the K-pusher/
# 1-puller end-to-end test against a live daemon, and the pulling VM's
# divergence kill switch.
test-plan:
	$(GO) test ./internal/plan/...
	$(GO) test -run 'Fuzz' ./internal/plan/...
	$(GO) test -run 'TestPlan' ./internal/daemon/...
	$(GO) test -run 'TestPull' ./internal/puller/...

# The chaos harness, twice over: the fleetsim unit + negative tests
# (every invariant checker must be shown to fire), then a short
# fixed-seed soak through the real cbsload binary — all four fault
# kinds, a mid-run daemon restart, exit 1 on any invariant failure.
test-fleet:
	$(GO) test ./internal/fleetsim/...
	$(GO) run ./cmd/cbsload -vms 8 -rounds 4 -seed $(FLEET_SEED) -faults all -restarts 1

# The federated aggregation tier: the api surface (routes, envelope,
# client retry policy), the federation package's property tests
# (rendezvous routing stable under leaf churn and spread over
# same-length keys; forwarder crash/restart exactness; re-routed
# pusher never double-counts at the root), the live two-daemon
# leaf→root tree, and a short fixed-seed federated chaos soak —
# 16 VMs sharded over 4 leaves + 1 root, leaf kills mid-merge,
# conservation checked fleet-wide at the root.
test-federation:
	$(GO) test ./internal/api/... ./internal/federation/...
	$(GO) test -run 'TestLeafForwardsToRoot|TestTree' ./internal/daemon/... ./internal/fleetsim/...
	$(GO) run ./cmd/cbsload -vms 16 -leaves 4 -rounds 4 -seed $(FLEET_SEED) -faults all -restarts 2

# The version-identity loop end to end: the minimal-upgrade property
# (one method fingerprint moves, no site moves), then the rolling
# upgrade — half the fleet flips to a modified build mid-run, and the
# harness checks weight conservation per version (v2's including the
# carried-forward baseline), restart byte-identity for both builds,
# monotone non-flapping plan epochs within each version, zero
# cross-version plans observed, and a misrouted probe refusing v1
# plans while running v2.
test-upgrade:
	$(GO) test -run 'TestRollingUpgrade|TestUpgradeProgram' -v ./internal/fleetsim/...

# Minimum-coverage instrumentation: the unit tests, the 15-benchmark
# differential gate (recovered DCG byte-identical to exhaustive with
# strictly fewer probed call points, plain and inlined), the
# random-program recovery fuzz, and the three-way profiler study
# (exhaustive vs CBS vs mincover) through the real cbsbench binary.
test-mincover:
	$(GO) test ./internal/mincover/...
	$(GO) run ./cmd/cbsbench -study profilers -quick

# The workload frontier: the shaped generator's determinism + shape
# differential tests, the mjgen CLI contract (-check without -run,
# non-zero exits with seed echo), the 50-seed differential gate every
# generated program passes ({plain, inlined, fused} × {bare,
# exhaustive, cbs, mincover} vs the reference interpreter, byte-exact
# mincover recovery, closure points demoted not exhaustive), the
# profiler closure-site tests, the closure opcode round-trip tests,
# the fusion closure-barrier test, and a generated-workload fleet soak.
test-workload:
	$(GO) test -run 'TestShaped|TestDifferential|FuzzGeneratedDifferential' ./internal/mj/
	$(GO) test ./cmd/mjgen/
	$(GO) test -run 'TestGeneratedDifferentialGate|TestClosureBenchmarksDemoted' ./internal/mincover/
	$(GO) test -run 'Closure' ./internal/profiler/ ./internal/bytecode/ ./internal/opt/
	$(GO) test -run 'TestFleetSoakGenerated|TestFleetGeneratedWorkload' ./internal/fleetsim/

# A bigger randomized soak for hunting; cbsload prints the chosen seed
# up front and repeats it on failure, so any hit replays with
# `make soak SOAK_SEED=<seed>`.
soak:
	$(GO) run ./cmd/cbsload -vms 32 -rounds 8 -seed $(SOAK_SEED) -faults all -restarts 2

# The generated-workload soak: the full chaos fleet on a novel program
# nobody tuned for. GEN_SEED=0 draws a random generator seed; the
# banner cbsload prints carries the seed, so any failure replays with
# `make soak-gen GEN_SEED=<seed>`.
soak-gen:
	@seed=$(GEN_SEED); if [ "$$seed" = "0" ]; then seed=$$(($$(date +%s) % 100000)); fi; \
	echo "soak-gen: generator seed $$seed (replay: make soak-gen GEN_SEED=$$seed)"; \
	$(GO) run ./cmd/cbsload -vms 16 -rounds 6 -seed $(SOAK_SEED) -faults all -restarts 1 \
		-gen-seed $$seed -gen-shape closureheavy -profilers cbs,exhaustive,mincover

vet:
	$(GO) vet ./...

# Explicit vet pass over the command binaries (kept separate so ci
# still flags a cmd that a package rename dropped from ./...).
vet-cmds:
	$(GO) vet ./cmd/...

ci: tier1 vet vet-cmds build-cmds test-daemon test-plan test-race test-recovery test-fleet test-upgrade test-federation test-mincover test-workload

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Perf-trajectory smoke: a quick -study perf pass whose report is
# schema-validated (the emitter round-trips it through perf.ReadFile)
# and gated against the checked-in BENCH_1.json baseline — the run
# fails on a >10% geomean Mcyc/s regression over the benchmarks the
# quick subset shares with the baseline. The report itself goes to a
# scratch path so the committed trajectory only grows deliberately.
BENCH_SMOKE_OUT ?= /tmp/BENCH_smoke.json
bench-smoke:
	$(GO) run ./cmd/cbsbench -study perf -quick \
		-perf-out $(BENCH_SMOKE_OUT) -perf-baseline BENCH_1.json -perf-gate 0.10
	@rm -f $(BENCH_SMOKE_OUT)

# Regenerate the committed baseline with the full suite and default
# measurement parameters. Run on a quiet machine; commit the diff.
bench-baseline:
	$(GO) run ./cmd/cbsbench -study perf -perf-out BENCH_1.json
