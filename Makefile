GO ?= go

# Every command binary, built explicitly by `make build-cmds` so ci
# catches a cmd that ./... would skip (e.g. after a package rename).
CMDS := ./cmd/cbsbench ./cmd/cbsd ./cmd/cbsvm ./cmd/dcgdiff ./cmd/mjc ./cmd/mjgen

.PHONY: all tier1 build build-cmds test test-race test-daemon test-recovery test-plan vet vet-cmds ci bench

all: tier1

# Tier-1 verification: the gate every PR must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

build-cmds:
	$(GO) build $(CMDS)

test:
	$(GO) test ./...

# Race coverage for the concurrent layers: the parallel experiment
# runner, the experiments that fan out over it, the profilers the jobs
# drive, the sharded concurrent DCG store (its soak test is the
# K-writers-vs-serial-reference check), the inline transform's clone
# isolation soak, and the plan service's version-cached compilation.
test-race:
	$(GO) test -race ./internal/runner/... ./internal/experiment/... ./internal/profiler/... ./internal/dcgstore/... ./internal/inline/... ./internal/plan/...

# The cbsd aggregation daemon's httptest-based endpoint tests plus the
# runner-driven multi-pusher convergence test.
test-daemon:
	$(GO) test ./cmd/cbsd/...

# Durability and exactly-once delivery, under the race detector: the
# checkpoint round trip, sequence dedup, the flaky-pusher soak (a
# daemon that drops responses while pushers retry), and the SIGTERM
# kill-and-restart lifecycle.
test-recovery:
	$(GO) test -race -run 'Checkpoint|Restore|Sequence|Sequenced|Duplicate|Dedup|Flaky|Retr|Outage|GiveUp|Sigterm|Corrupt' ./internal/dcgstore/... ./cmd/cbsd/...

# The fleet PGO loop: plan wire round trip + rejection paths, the
# fuzz seed corpus, stability/determinism properties, the K-pusher/
# 1-puller end-to-end test against a live daemon, and the pulling VM's
# divergence kill switch.
test-plan:
	$(GO) test ./internal/plan/...
	$(GO) test -run 'Fuzz' ./internal/plan/...
	$(GO) test -run 'TestPlan' ./cmd/cbsd/...
	$(GO) test -run 'TestPull' ./cmd/cbsvm/...

vet:
	$(GO) vet ./...

# Explicit vet pass over the command binaries (kept separate so ci
# still flags a cmd that a package rename dropped from ./...).
vet-cmds:
	$(GO) vet ./cmd/...

ci: tier1 vet vet-cmds build-cmds test-daemon test-plan test-race test-recovery

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
