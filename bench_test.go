// Package gocbs_test hosts the testing.B harness: one benchmark per
// table and figure of the paper, each timing a reduced-scale run of
// the corresponding experiment (the full-scale runs are produced by
// cmd/cbsbench and recorded in EXPERIMENTS.md).
//
//	go test -bench=. -benchmem
package gocbs_test

import (
	"testing"

	"gocbs/internal/bench"
	"gocbs/internal/experiment"
	"gocbs/internal/inline"
	"gocbs/internal/mj"
	"gocbs/internal/profiler"
	"gocbs/internal/vm"
)

// quickCfg returns a subsetted, single-seed configuration sized so
// each experiment iteration stays in the low seconds.
func quickCfg(tb testing.TB, names ...string) experiment.Config {
	tb.Helper()
	cfg := experiment.QuickConfig()
	sub, err := bench.Subset(names)
	if err != nil {
		tb.Fatal(err)
	}
	cfg.Benchmarks = sub
	return cfg
}

// BenchmarkTable1 regenerates the benchmark-characteristics table.
func BenchmarkTable1(b *testing.B) {
	cfg := quickCfg(b, "jess", "javac")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2A regenerates a reduced overhead/accuracy grid for
// the Jikes RVM flavour.
func BenchmarkTable2A(b *testing.B) {
	cfg := quickCfg(b, "jess", "javac")
	strides := []int{1, 7, 31}
	samples := []int{1, 16, 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table2(cfg, profiler.FlavourRVM, "small", strides, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2B is the J9-flavour grid.
func BenchmarkTable2B(b *testing.B) {
	cfg := quickCfg(b, "jess", "javac")
	strides := []int{1, 7, 31}
	samples := []int{1, 16, 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table2(cfg, profiler.FlavourJ9, "small", strides, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the per-benchmark base-vs-CBS breakdown.
func BenchmarkTable3(b *testing.B) {
	cfg := quickCfg(b, "jess", "javac")
	params := experiment.DefaultTable3Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table3(cfg, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Jikes regenerates the left graph of Figure 5.
func BenchmarkFigure5Jikes(b *testing.B) {
	cfg := quickCfg(b, "jess", "mtrt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure5(cfg, experiment.Figure5Jikes, "small"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5J9 regenerates the right graph of Figure 5.
func BenchmarkFigure5J9(b *testing.B) {
	cfg := quickCfg(b, "jess", "mtrt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure5(cfg, experiment.Figure5J9, "small"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergence regenerates the E8 accuracy-over-time study.
func BenchmarkConvergence(b *testing.B) {
	cfg := quickCfg(b, "javac")
	bb := bench.ByName("javac")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Convergence(cfg, bb, "small"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkewAblation regenerates the E9 initial-skip study.
func BenchmarkSkewAblation(b *testing.B) {
	cfg := quickCfg(b, "jess", "mpegaudio")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SkewAblation(cfg, "small", 31, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComparators regenerates the E10 §3-techniques study.
func BenchmarkComparators(b *testing.B) {
	cfg := quickCfg(b, "jess", "javac")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Comparators(cfg, "small"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInlinerAblation regenerates the E11 old-vs-new inliner study.
func BenchmarkInlinerAblation(b *testing.B) {
	cfg := quickCfg(b, "jess", "mtrt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.InlinerAblation(cfg, "small"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContextSensitive regenerates the E12 CCT study.
func BenchmarkContextSensitive(b *testing.B) {
	cfg := quickCfg(b, "jess", "kawa")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ContextStudy(cfg, "small"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks of the substrate itself ---

// BenchmarkInterpreter measures raw interpretation throughput.
func BenchmarkInterpreter(b *testing.B) {
	prog, err := bench.ByName("jess").Compile()
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(prog)
	setup := prog.MethodByName("$Globals.setup")
	iter := prog.MethodByName("$Globals.iter")
	if _, err := m.Call(setup, vm.IntV(128)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		before := m.Instrs
		if _, err := m.Call(iter); err != nil {
			b.Fatal(err)
		}
		instrs += m.Instrs - before
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// BenchmarkCBSOverheadOnVM measures the Go-level (not modeled) cost the
// CBS profiler adds to interpretation.
func BenchmarkCBSOverheadOnVM(b *testing.B) {
	for _, withProfiler := range []bool{false, true} {
		name := "bare"
		if withProfiler {
			name = "cbs"
		}
		b.Run(name, func(b *testing.B) {
			prog, err := bench.ByName("jess").Compile()
			if err != nil {
				b.Fatal(err)
			}
			m := vm.New(prog)
			if withProfiler {
				m.SetProfiler(profiler.NewCBS(profiler.Config{Stride: 3, SamplesPerTick: 16, Seed: 1}))
				m.SetTimer(1_000_000)
			}
			setup := prog.MethodByName("$Globals.setup")
			iter := prog.MethodByName("$Globals.iter")
			if _, err := m.Call(setup, vm.IntV(128)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Call(iter); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMJCompile measures front-end throughput on the largest
// suite program.
func BenchmarkMJCompile(b *testing.B) {
	src := bench.ByName("javac").Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mj.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInlineOptimize measures the optimizer on a full program.
func BenchmarkInlineOptimize(b *testing.B) {
	bb := bench.ByName("javac")
	cfg := quickCfg(b, "javac")
	g, err := experiment.PerfectDCG(cfg, bb, bb.Small/4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := bb.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inline.Optimize(prog, inline.NewNewLinear(), g, inline.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCleanupAblation regenerates the E13 peephole study.
func BenchmarkCleanupAblation(b *testing.B) {
	cfg := quickCfg(b, "jess", "mtrt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CleanupAblation(cfg, "small"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineAdaptive regenerates the E14 online-system study.
func BenchmarkOnlineAdaptive(b *testing.B) {
	cfg := quickCfg(b, "jess", "mtrt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Online(cfg, "small"); err != nil {
			b.Fatal(err)
		}
	}
}
